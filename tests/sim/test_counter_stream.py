"""Counter-based randomness: the shard-safe stream primitives.

``CounterStream`` prices each draw as a pure hash of ``(seed, sender,
recipient, per-link counter)``, so any executor that walks a link's
copies in the same per-link order reproduces the same values — the
property that lets ``UniformDelay(stream="counter")`` and counter-stream
``FaultPlan`` compilations run sharded without schedule drift.  This
module pins the primitives themselves; the end-to-end shard parity lives
in ``test_sharded.py``.
"""
import pytest

from repro.errors import FaultPlanError
from repro.sim.delays import CounterStream, UniformDelay, splitmix64
from repro.sim.faults import Crash, DropLink, FaultPlan


class TestSplitmix64:
    def test_deterministic_and_64_bit(self):
        for x in (0, 1, 2**63, 2**64 - 1, 0x9E3779B97F4A7C15):
            a = splitmix64(x)
            assert a == splitmix64(x)
            assert 0 <= a < 2**64

    def test_nearby_inputs_decorrelate(self):
        outputs = {splitmix64(x) for x in range(1000)}
        assert len(outputs) == 1000


class TestCounterStream:
    def test_same_seed_same_sequence(self):
        a = CounterStream(42)
        b = CounterStream(42)
        seq_a = [a.uniform(3, 7) for _ in range(50)]
        seq_b = [b.uniform(3, 7) for _ in range(50)]
        assert seq_a == seq_b
        assert all(0.0 <= u < 1.0 for u in seq_a)

    def test_links_are_independent(self):
        # Interleaving draws across links must not change any link's
        # own sequence — the heart of shard-safety: each shard walks
        # only its own links, in its own order.
        solo = CounterStream(7)
        expected = {
            (s, r): [solo.uniform(s, r) for _ in range(10)]
            for s in range(3)
            for r in range(3)
            if s != r
        }
        interleaved = CounterStream(7)
        got = {link: [] for link in expected}
        for _ in range(10):
            for link in expected:
                got[link].append(interleaved.uniform(*link))
        assert got == expected

    def test_seed_and_salt_produce_distinct_streams(self):
        base = [CounterStream(1).uniform(0, 1) for _ in range(1)]
        other_seed = [CounterStream(2).uniform(0, 1)]
        salted = [CounterStream(1, salt=99).uniform(0, 1)]
        assert base != other_seed
        assert base != salted

    def test_draws_walk_within_one_copy(self):
        # One copy_key, many in-copy draws (what the injector's
        # primitives consume): deterministic, and distinct from the
        # next copy's draws.
        first = CounterStream(5).draws(1, 2)
        again = CounterStream(5).draws(1, 2)
        assert [first.random() for _ in range(5)] == [
            again.random() for _ in range(5)
        ]
        stream = CounterStream(5)
        stream.draws(1, 2)
        second_copy = stream.draws(1, 2)
        assert first.random() != second_copy.random()


class TestUniformDelayCounterMode:
    def test_rejects_unknown_stream(self):
        with pytest.raises(ValueError):
            UniformDelay(0.1, 1.0, seed=1, stream="quantum")

    def test_shard_safety_by_stream(self):
        assert not UniformDelay(0.1, 1.0, seed=1).shard_safe()
        assert UniformDelay(
            0.1, 1.0, seed=1, stream="counter"
        ).shard_safe()

    def test_delay_in_bounds_and_seed_pinned(self):
        a = UniformDelay(0.25, 0.75, seed=11, stream="counter")
        b = UniformDelay(0.25, 0.75, seed=11, stream="counter")
        for _ in range(20):
            d = a.delay(0, 1, None, 0.0)
            assert d == b.delay(0, 1, None, 0.0)
            assert 0.25 <= d <= 0.75

    def test_multicast_matches_per_copy_delays(self):
        # The vectorized fan-out path must price exactly what n calls
        # to delay() would: both tick the same per-link counters.
        fanout = UniformDelay(0.05, 1.0, seed=3, stream="counter")
        single = UniformDelay(0.05, 1.0, seed=3, stream="counter")
        recipients = [1, 2, 3, 4, 5]
        vector = fanout.delays_for_multicast(0, recipients, None, 0.0)
        assert list(vector) == [
            single.delay(0, r, None, 0.0) for r in recipients
        ]

    def test_split_fanout_matches_whole_fanout(self):
        # Sharded worlds call delays_for_multicast once per shard-local
        # range; the concatenation must equal one whole-fan-out call.
        whole = UniformDelay(0.05, 1.0, seed=9, stream="counter")
        split = UniformDelay(0.05, 1.0, seed=9, stream="counter")
        all_at_once = list(
            whole.delays_for_multicast(2, range(0, 8), None, 0.0)
        )
        piecewise = list(
            split.delays_for_multicast(2, range(0, 3), None, 0.0)
        ) + list(split.delays_for_multicast(2, range(3, 8), None, 0.0))
        assert piecewise == all_at_once


class TestFaultPlanStream:
    def test_default_is_sequential_and_not_shard_safe(self):
        plan = FaultPlan(crashes=(Crash(party=1, at=0.5),))
        assert plan.stream == "sequential"
        assert not plan.shard_safe()

    def test_counter_stream_is_shard_safe(self):
        plan = FaultPlan(
            crashes=(Crash(party=1, at=0.5),), stream="counter"
        )
        plan.validate(4)
        assert plan.shard_safe()

    def test_leader_crashes_never_shard_safe(self):
        from repro.sim.faults import CrashLeader

        plan = FaultPlan(
            leader_crashes=(CrashLeader(view=1, at=0.0),),
            stream="counter",
        )
        assert not plan.shard_safe()

    def test_validate_rejects_unknown_stream(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(stream="quantum").validate(4)

    def test_json_round_trip_preserves_stream(self):
        plan = FaultPlan(
            drops=(DropLink(src=2, prob=0.5),),
            seed=13,
            stream="counter",
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.stream == "counter"
        assert FaultPlan.from_json(FaultPlan().to_json()).stream == (
            "sequential"
        )

    def test_without_preserves_stream(self):
        drop = DropLink(src=2, prob=0.5)
        plan = FaultPlan(
            crashes=(Crash(party=1, at=0.5),),
            drops=(drop,),
            stream="counter",
        )
        shrunk = plan.without(drop)
        assert shrunk.drops == ()
        assert shrunk.stream == "counter"
