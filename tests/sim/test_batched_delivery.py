"""Parity suite for batched delivery and the vectorized vote path.

Run batching (one ``_deliver_many`` event per equal-delay fan-out run)
and vote batching (one staged ``add_batch`` per uniform forwarded
quorum) are pure performance transforms: the same seed must yield the
same commits, message counts, logical event counts and tally counters
with either path.  This suite pins that equivalence across presets,
timeline backends and the explicit ``batch_deliveries`` opt-out, plus
the counter relationships the benchmarks report.
"""
import pytest

from repro.protocols.brb_2round import Brb2Round
from repro.protocols.psync.vbb_5f1 import PsyncVbb5f1
from repro.protocols.sync.bb_2delta import Bb2Delta
from repro.protocols.sync.bb_delta_15delta import BbDelta15Delta
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.instrumentation import Instrumentation
from repro.sim.runner import run_broadcast

CASES = {
    "brb_2round": (Brb2Round, 13, 4, {}),
    "bb_2delta": (Bb2Delta, 10, 3, {"big_delta": 1.0}),
    "bb_delta_15delta": (BbDelta15Delta, 9, 4, {"big_delta": 1.0}),
    "vbb_5f1": (PsyncVbb5f1, 11, 2, {}),
}


def _instrumentation(preset, timeline, batch):
    if preset == "full":
        return Instrumentation(
            name="full", rounds=True, transcripts=True,
            timeline=timeline, batch_deliveries=batch,
        )
    return Instrumentation(
        name="perf", rounds=False, transcripts=False,
        recycle_events=True, timeline=timeline, batch_deliveries=batch,
    )


def _run(case, preset, timeline, batch, *, delay):
    cls, n, f, kwargs = CASES[case]
    if delay == "fixed":
        policy = FixedDelay(0.37)
    else:
        policy = UniformDelay(0.0, 0.9, seed=11)
    return run_broadcast(
        n=n,
        f=f,
        party_factory=cls.factory(broadcaster=0, input_value="v", **kwargs),
        delay_policy=policy,
        instrumentation=_instrumentation(preset, timeline, batch),
    )


def _outcome(result):
    return (
        dict(result.commits),
        dict(result.commit_global_times),
        result.messages_sent,
        result.final_time,
        result.events_processed,
        result.quorum_checks,
        result.equivocations_detected,
    )


class TestBatchedDeliveryParity:
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("delay", ["fixed", "uniform"])
    def test_same_seed_same_outcome_all_modes(self, case, delay):
        base = None
        for preset in ("full", "perf"):
            for timeline in ("bucket", "heap"):
                for batch in (True, False):
                    outcome = _outcome(
                        _run(case, preset, timeline, batch, delay=delay)
                    )
                    if base is None:
                        base = outcome
                    else:
                        assert outcome == base, (
                            f"{case}/{delay}: {preset}/{timeline}/"
                            f"batch={batch} diverged"
                        )

    def test_zero_delay_runs_stay_per_copy(self):
        # Same-instant deliveries keep per-copy scheduling (reaction
        # ordering at one instant is seq-sensitive), so a zero-delay
        # policy must never produce a batched run.
        result = _run("brb_2round", "perf", "bucket", True, delay="fixed")
        assert result.deliveries_batched > 0  # sanity: 0.37 > 0 batches
        zero = run_broadcast(
            n=13,
            f=4,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=FixedDelay(0.0),
            instrumentation=_instrumentation("perf", "bucket", True),
        )
        assert zero.deliveries_batched == 0
        assert zero.delivery_runs_batched == 0
        assert zero.all_honest_committed()


class TestBatchedDeliveryCounters:
    def test_perf_counts_batched_runs_full_stays_per_copy(self):
        perf = _run("brb_2round", "perf", "bucket", True, delay="fixed")
        full = _run("brb_2round", "full", "bucket", True, delay="fixed")
        # perf: no per-copy observer, so fixed-delay fan-outs batch.
        assert perf.deliveries_batched > 0
        assert perf.delivery_runs_batched > 0
        # full: the accountant observes every copy — per-copy forced.
        assert full.deliveries_batched == 0
        assert full.delivery_runs_batched == 0
        # events_processed counts *logical* deliveries in both paths.
        assert perf.events_processed == full.events_processed

    def test_votes_batched_counts_vectorized_absorbs(self):
        # Stragglers receive quorum forwards before terminating, so the
        # vectorized vote path activates under spread-out delays...
        spread = _run("brb_2round", "perf", "bucket", True, delay="uniform")
        assert spread.votes_batched > 0
        # ...and is instrumentation-invariant: the vote path is chosen
        # by message *content*, not by the delivery mode.
        spread_full = _run(
            "brb_2round", "full", "bucket", True, delay="uniform"
        )
        assert spread_full.votes_batched == spread.votes_batched
