"""Tests for the deterministic fault-injection engine.

Covers the plan primitives and their validation, the injector's seams
(send suppression, delivery discard, drop/duplicate/jitter/partition/
churn routing), the determinism contracts (same plan + seed => identical
schedules across presets and both timeline backends), the no-fault
byte-parity guarantee, the GstDelay scalar-vs-batch parity under churned
send times, and the event-arena double-release guard.
"""
from __future__ import annotations

import pytest

from repro.errors import FaultPlanError, SimulationError
from repro.protocols.brb_2round import Brb2Round
from repro.sim.delays import GstDelay, UniformDelay
from repro.sim.events import EventQueue
from repro.sim.faults import (
    Crash,
    CrashLeader,
    CrashWindow,
    DropLink,
    DuplicateLink,
    FaultInjector,
    FaultPlan,
    GstChurn,
    Holdback,
    Partition,
    ReorderJitter,
)
from repro.sim.retransmit import ReliableLink
from repro.sim.instrumentation import Instrumentation
from repro.sim.runner import World
from repro.sim.timeline import BucketTimeline
from repro.types import INF


class TestFaultPlan:
    def test_primitives_and_len(self):
        plan = FaultPlan(
            crashes=(Crash(1, 0.5),),
            duplicates=(DuplicateLink(),),
            jitters=(ReorderJitter(jitter=1.0),),
        )
        assert len(plan) == 3
        assert not plan.is_empty()
        assert FaultPlan().is_empty()
        assert plan.crashed_parties() == frozenset({1})

    def test_without_removes_one_primitive(self):
        crash = Crash(1, 0.0)
        plan = FaultPlan(crashes=(crash, Crash(2, 0.0)))
        smaller = plan.without(crash)
        assert len(smaller) == 1
        assert smaller.crashed_parties() == frozenset({2})
        # Removing a primitive that is not in the plan is a no-op copy.
        assert len(plan.without(Crash(5, 9.9))) == 2

    def test_quiet_time(self):
        plan = FaultPlan(
            crashes=(Crash(1, 1.0, recover=3.0), Crash(2, 5.0)),
            partitions=(
                Partition(groups=((0, 1), (2, 3)), start=0.0, end=2.0,
                          flush_delay=0.5),
            ),
            churns=(GstChurn(windows=((0.0, 4.0),), bound=1.5),),
        )
        # crash-stop at 5.0 contributes its *crash* instant only; the
        # churn window resolving at 4.0 + 1.5 dominates.
        assert plan.quiet_time() == 5.5

    def test_validate_rejects_bad_primitives(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(Crash(9, 0.0),)).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(Crash(1, 2.0, recover=1.0),)).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(drops=(DropLink(prob=1.5),)).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(
                partitions=(
                    Partition(groups=((0,),), start=0.0, end=INF),
                ),
            ).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(
                partitions=(
                    Partition(groups=((0, 1), (1, 2)), start=0.0, end=1.0),
                ),
            ).validate(4)

    def test_check_tolerated(self):
        ok = FaultPlan(crashes=(Crash(1, 0.0),))
        assert ok.check_tolerated(n=4, f=1, deadline=10.0) == []
        over = FaultPlan(crashes=(Crash(1, 0.0), Crash(2, 0.0)))
        assert over.check_tolerated(n=4, f=1, deadline=10.0)
        late_heal = FaultPlan(
            partitions=(
                Partition(groups=((0, 1), (2, 3)), start=0.0, end=20.0),
            ),
        )
        assert late_heal.check_tolerated(n=4, f=1, deadline=10.0)
        honest_drop = FaultPlan(drops=(DropLink(src=1, prob=0.5),))
        assert honest_drop.check_tolerated(n=4, f=1, deadline=10.0)
        # The same drop out of a crashed party is spent budget.
        faulty_drop = FaultPlan(
            crashes=(Crash(1, 0.0),), drops=(DropLink(src=1, prob=0.5),)
        )
        assert faulty_drop.check_tolerated(n=4, f=1, deadline=10.0) == []


class TestViewChangePrimitives:
    def test_crash_leader_resolves_through_the_rotation(self):
        plan = FaultPlan(
            leader_crashes=(CrashLeader(view=2, recover=5.0),), seed=9
        )
        resolved = plan.resolve_leaders(lambda view: (view - 1) % 4)
        assert resolved.leader_crashes == ()
        assert resolved.crashes == (Crash(1, 0.0, recover=5.0),)
        assert resolved.seed == 9
        # Without symbolic entries resolution is the identity.
        assert FaultPlan().resolve_leaders(lambda v: 0) == FaultPlan()

    def test_injector_rejects_unresolved_leader_crashes(self):
        plan = FaultPlan(leader_crashes=(CrashLeader(view=1),))
        with pytest.raises(FaultPlanError):
            FaultInjector(plan, n=4)

    def test_validate_covers_the_new_primitives(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(leader_crashes=(CrashLeader(view=0),)).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(
                holdbacks=(Holdback(start=0.0, end=INF),)
            ).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(holdbacks=(Holdback(src=9),)).validate(4)

    def test_holdback_retimes_instead_of_dropping(self):
        injector = FaultInjector(
            FaultPlan(
                holdbacks=(
                    Holdback(src=0, start=0.0, end=4.0, flush_delay=0.0),
                ),
            ),
            n=4,
        )
        # Held to the window's release instant, never lost.
        assert injector.route(0, 1, 0.0, 1.0) == [4.0]
        assert injector.route(2, 1, 0.0, 1.0) == [1.0]  # other links free
        # A natural delivery past the release is untouched.
        assert injector.route(0, 1, 3.9, 4.9) == [4.9]
        assert injector.messages_held == 1
        assert injector.messages_dropped == 0

    def test_quiet_time_grows_a_retransmission_tail(self):
        link = ReliableLink(rto=1.0, backoff=2.0, max_retries=2)  # tail 3
        plan = FaultPlan(
            drops=(DropLink(dst=1, start=0.0, end=4.0, prob=1.0),),
            holdbacks=(Holdback(src=0, start=0.0, end=2.0, flush_delay=0.5),),
            leader_crashes=(CrashLeader(view=1, recover=3.0),),
        )
        assert plan.quiet_time() == 4.0
        assert plan.quiet_time(link) == 7.0
        # Crash-stop leader crashes stay spent budget, tail or not.
        stop = FaultPlan(leader_crashes=(CrashLeader(view=1),))
        assert stop.quiet_time(link) == 0.0

    def test_check_tolerated_with_view_change_primitives(self):
        leader = FaultPlan(leader_crashes=(CrashLeader(view=1),))
        assert leader.check_tolerated(n=4, f=1, deadline=20.0) == []
        two_views = FaultPlan(
            leader_crashes=(CrashLeader(view=1), CrashLeader(view=2)),
        )
        assert two_views.check_tolerated(n=4, f=1, deadline=20.0)
        late_hold = FaultPlan(
            holdbacks=(Holdback(src=0, start=0.0, end=30.0),),
        )
        assert late_hold.check_tolerated(n=4, f=1, deadline=20.0)

    def test_reliable_link_makes_finite_honest_drops_tolerated(self):
        plan = FaultPlan(
            drops=(DropLink(dst=1, start=0.0, end=2.0, prob=1.0),),
        )
        assert plan.check_tolerated(n=4, f=1, deadline=20.0)
        # tail 2+4+8+16=30 > window 2: every copy retries past the loss.
        assert plan.check_tolerated(
            n=4, f=1, deadline=20.0, reliable=ReliableLink()
        ) == []
        # A never-closing drop window is fatal even with retries.
        forever = FaultPlan(drops=(DropLink(dst=1, prob=1.0),))
        assert forever.check_tolerated(
            n=4, f=1, deadline=20.0, reliable=ReliableLink()
        )

    def test_json_round_trip_covers_every_field(self):
        plan = FaultPlan(
            crashes=(Crash(1, 0.5, recover=2.0), Crash(2, 0.0)),
            drops=(DropLink(src=0, dst=3, start=0.0, end=4.0, prob=1.0),),
            duplicates=(DuplicateLink(prob=0.4, end=2.0, echo_delay=0.1),),
            jitters=(ReorderJitter(jitter=0.7, end=3.0),),
            partitions=(
                Partition(groups=((0, 1), (2, 3)), start=0.2, end=2.5,
                          flush_delay=0.8),
            ),
            churns=(GstChurn(windows=((0.0, 4.0),), bound=1.5),),
            leader_crashes=(CrashLeader(view=2, at=0.1, recover=6.0),
                            CrashLeader(view=3)),
            holdbacks=(Holdback(src=0, start=0.0, end=5.0, flush_delay=0.5),),
            seed=42,
        )
        doc = plan.to_json()
        assert FaultPlan.from_json(doc) == plan
        # INF survives the JSON detour (encoded, not a float inf).
        import json

        assert FaultPlan.from_json(json.loads(json.dumps(doc))) == plan

    def test_without_removes_new_primitives(self):
        hold = Holdback(src=0, end=5.0)
        lc = CrashLeader(view=1)
        plan = FaultPlan(leader_crashes=(lc,), holdbacks=(hold,))
        assert len(plan) == 2
        assert len(plan.without(hold)) == 1
        assert plan.without(hold).without(lc).is_empty()


class TestCrashWindow:
    def test_is_down_and_recovery(self):
        window = CrashWindow(3).add(1.0, 2.0).add(5.0)
        assert not window.is_down(0.5)
        assert window.is_down(1.0)
        assert not window.is_down(2.0)  # half-open [at, recover)
        assert window.is_down(99.0)  # crash-stop tail
        assert window.next_recovery_after(0.0) == 2.0
        assert window.next_recovery_after(3.0) is None

    def test_from_plan_crashes(self):
        window = CrashWindow(1, [Crash(1, 2.0, 3.0), Crash(2, 0.0)])
        assert window.windows == [(2.0, 3.0)]  # only party 1's crashes


class TestFaultInjector:
    def test_crash_seam_blocks_sends_and_deliveries(self):
        injector = FaultInjector(
            FaultPlan(crashes=(Crash(1, 1.0, recover=2.0),)), n=4
        )
        assert not injector.block_send(1, 0.5)
        assert injector.block_send(1, 1.5)
        assert injector.block_delivery(1, 1.5)
        assert not injector.block_delivery(1, 2.0)
        assert not injector.block_send(2, 1.5)  # other parties unaffected
        assert injector.faults_injected == 2
        assert injector.messages_dropped == 1

    def test_certain_drop_loses_the_copy(self):
        injector = FaultInjector(
            FaultPlan(drops=(DropLink(src=0, dst=1, prob=1.0),)), n=4
        )
        assert injector.route(0, 1, 0.0, 1.0) == []
        assert injector.route(0, 2, 0.0, 1.0) == [1.0]
        assert injector.messages_dropped == 1

    def test_duplicate_adds_echo(self):
        injector = FaultInjector(
            FaultPlan(duplicates=(DuplicateLink(prob=1.0, echo_delay=0.5),)),
            n=4,
        )
        assert injector.route(0, 1, 0.0, 1.0) == [1.0, 1.5]
        assert injector.messages_duplicated == 1

    def test_partition_holds_until_heal(self):
        injector = FaultInjector(
            FaultPlan(
                partitions=(
                    Partition(groups=((0, 1), (2, 3)), start=0.0, end=4.0,
                              flush_delay=0.0),
                ),
            ),
            n=4,
        )
        assert injector.route(0, 2, 0.0, 1.0) == [4.0]  # held to the heal
        assert injector.route(0, 1, 0.0, 1.0) == [1.0]  # same group: untouched
        assert injector.messages_held == 1

    def test_routing_is_deterministic_per_seed(self):
        plan = FaultPlan(
            drops=(DropLink(src=1, prob=0.5),),
            crashes=(Crash(1, 0.0),),
            jitters=(ReorderJitter(jitter=1.0),),
            seed=77,
        )
        trace_a = [
            FaultInjector(plan, n=4).route(0, r, 0.1, 1.0) for r in (1, 2, 3)
        ]
        injector = FaultInjector(plan, n=4)
        trace_b = [injector.route(0, r, 0.1, 1.0) for r in (1, 2, 3)]
        # Per-injector streams restart from the plan seed; a fresh
        # injector consuming the same schedule replays the same routes.
        fresh = [
            FaultInjector(plan, n=4).route(0, r, 0.1, 1.0) for r in (1, 2, 3)
        ]
        assert trace_a == fresh
        assert trace_b[0] == trace_a[0]

    def test_validate_runs_at_compile_time(self):
        with pytest.raises(FaultPlanError):
            FaultInjector(FaultPlan(crashes=(Crash(9, 0.0),)), n=4)


def _run_brb(
    *, plan=None, monitors=None, preset="full", timeline="bucket", seed=3,
    n=7, f=2,
):
    presets = {
        "full": dict(rounds=True, transcripts=True),
        "rounds": dict(rounds=True, transcripts=False),
        "perf": dict(rounds=False, transcripts=False, recycle_events=True),
    }
    world = World(
        n=n,
        f=f,
        delay_policy=UniformDelay(0.0, 1.0, seed=seed),
        instrumentation=Instrumentation(
            name=preset, timeline=timeline, **presets[preset]
        ),
        fault_plan=plan,
        monitors=monitors,
    )
    world.populate(Brb2Round.factory(broadcaster=0, input_value="v"))
    return world.run()


def _snapshot(result):
    return (
        tuple(sorted(result.commits.items())),
        tuple(sorted(result.commit_global_times.items())),
        result.messages_sent,
        result.final_time,
        result.events_processed,
    )


class TestWorldIntegration:
    def test_empty_plan_matches_no_plan_everywhere(self):
        """The CI faults-off parity claim: an *attached but empty* plan
        exercises the injector code path yet changes nothing."""
        for preset in ("full", "rounds", "perf"):
            for timeline in ("heap", "bucket"):
                baseline = _snapshot(
                    _run_brb(preset=preset, timeline=timeline)
                )
                empty = _snapshot(
                    _run_brb(
                        plan=FaultPlan(), preset=preset, timeline=timeline
                    )
                )
                assert baseline == empty, (preset, timeline)

    def test_crash_within_budget_spares_live_parties(self):
        plan = FaultPlan(crashes=(Crash(5, 0.0), Crash(6, 0.0)))
        result = _run_brb(plan=plan)
        live = set(range(5))
        assert live <= set(result.commits)
        assert set(result.commits.values()) == {"v"}
        assert 5 not in result.commits and 6 not in result.commits
        assert result.faults_injected > 0

    def test_fault_counters_reach_run_result(self):
        plan = FaultPlan(
            duplicates=(DuplicateLink(prob=1.0, end=2.0),),
            crashes=(Crash(6, 0.0),),
        )
        result = _run_brb(plan=plan)
        assert result.messages_duplicated > 0
        assert result.messages_dropped > 0  # deliveries into the crash
        assert result.faults_injected >= (
            result.messages_duplicated + result.messages_dropped
        )

    def test_plan_outcome_identical_across_presets(self):
        plan = FaultPlan(
            crashes=(Crash(6, 0.5, recover=2.0),),
            jitters=(ReorderJitter(jitter=0.7, end=3.0),),
            duplicates=(DuplicateLink(prob=0.4, end=2.0),),
            seed=11,
        )
        outcomes = {
            preset: (
                _run_brb(plan=plan, preset=preset).commits,
                _run_brb(plan=plan, preset=preset).commit_global_times,
            )
            for preset in ("full", "rounds", "perf")
        }
        assert outcomes["full"] == outcomes["rounds"] == outcomes["perf"]

    def test_partition_heal_flush_deterministic_across_backends(self):
        """Same seed => identical post-heal flush schedule on the heap
        and the bucket calendar (the injector RNG is consumed in
        scheduling order, which both backends share)."""
        plan = FaultPlan(
            partitions=(
                Partition(
                    groups=((0, 1, 2, 3), (4, 5, 6)),
                    start=0.2,
                    end=2.5,
                    flush_delay=0.8,
                ),
            ),
            jitters=(ReorderJitter(jitter=0.4, end=1.5),),
            seed=29,
        )
        snapshots = [
            _snapshot(_run_brb(plan=plan, timeline=timeline, preset=preset))
            for preset in ("full", "perf")
            for timeline in ("heap", "bucket")
        ]
        assert len(set(snapshots)) == 1
        result = _run_brb(plan=plan)
        assert result.messages_held > 0
        assert result.partition_windows == 1
        assert set(result.commits) == set(range(7))


class TestGstDelayBatchParity:
    def test_scalar_vs_batch_identical_straddling_gst(self):
        """Churned send times straddling GST: the batch fan-out must
        consume the wrapped policy's stream exactly as n scalar calls
        would, and apply the GST cap per copy."""
        recipients = list(range(1, 8))
        # Send instants generated by a churn primitive's window edges:
        # before, exactly at, and after GST.
        churn = GstChurn(windows=((3.0, 5.0),), bound=1.0)
        sends = [2.9, 3.0, 4.999, 5.0, 5.1]
        assert churn.window_at(3.0) and churn.window_at(4.999)
        assert churn.window_at(5.0) is None

        def make_policy():
            return GstDelay(
                gst=5.0,
                big_delta=1.0,
                pre_gst=UniformDelay(0.0, 9.0, seed=123),
            )

        scalar_policy = make_policy()
        batch_policy = make_policy()
        for send_time in sends:
            scalar = [
                scalar_policy.delay(0, r, ("m", send_time), send_time)
                for r in recipients
            ]
            batch = batch_policy.delays_for_multicast(
                0, recipients, ("m", send_time), send_time
            )
            assert scalar == batch, send_time
            for value in batch:
                latest = max(send_time, 5.0) + 1.0
                assert send_time + value <= latest + 1e-9


class TestDoubleReleaseGuard:
    @pytest.mark.parametrize("queue_cls", [EventQueue, BucketTimeline])
    def test_release_twice_raises(self, queue_cls):
        queue = queue_cls(recycle=True)
        cell = queue.push(1.0, lambda: None, transient=True)
        assert queue.pop() is cell
        queue.release(cell)
        with pytest.raises(SimulationError):
            queue.release(cell)
        # The freelist holds exactly one copy: the next two transient
        # pushes may reuse the cell once, never twice concurrently.
        first = queue.push(2.0, lambda: None, transient=True)
        second = queue.push(2.0, lambda: None, transient=True)
        assert first is cell
        assert second is not cell

    @pytest.mark.parametrize("queue_cls", [EventQueue, BucketTimeline])
    def test_discard_cancelled_idempotent_on_released_cells(self, queue_cls):
        queue = queue_cls(recycle=True)
        cell = queue.push(1.0, lambda: None, transient=True)
        assert queue.pop() is cell
        queue.release(cell)
        # A stale duplicate reference surfacing post-release must not
        # corrupt the cancelled count or re-release the cell.
        before = queue._cancelled
        queue._discard_cancelled(cell)
        assert queue._cancelled == before
        assert len(queue._free) == 1
