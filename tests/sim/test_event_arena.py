"""Tests for the event arena (freelist) in the queue and scheduler."""
from __future__ import annotations

from repro.sim.events import EventQueue
from repro.sim.scheduler import Simulator


class TestQueueArena:
    def test_transient_cells_recycle_after_release(self):
        queue = EventQueue(recycle=True)
        first = queue.push(1.0, lambda: None, transient=True)
        assert queue.pop() is first
        queue.release(first)
        second = queue.push(2.0, lambda: None, transient=True)
        assert second is first  # the cell was reused
        assert queue.events_recycled == 1
        assert second.time == 2.0
        assert second.transient

    def test_non_transient_pushes_never_touch_the_freelist(self):
        queue = EventQueue(recycle=True)
        cell = queue.push(1.0, lambda: None, transient=True)
        queue.pop()
        queue.release(cell)
        timer = queue.push(2.0, lambda: None)  # a cancellable timer
        assert timer is not cell
        assert not timer.transient
        assert queue.events_recycled == 0

    def test_recycle_disabled_marks_nothing_transient(self):
        queue = EventQueue()  # full-instrumentation mode
        event = queue.push(1.0, lambda: None, transient=True)
        assert not event.transient  # identity semantics preserved
        assert queue.events_recycled == 0

    def test_released_cell_action_is_inert(self):
        queue = EventQueue(recycle=True)
        cell = queue.push(1.0, lambda: None, transient=True)
        queue.pop()
        queue.release(cell)
        try:
            cell.action()
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("released cell fired without complaint")

    def test_event_args_passed_positionally(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda a, b: seen.append((a, b)), args=(1, 2))
        sim.schedule_at(2.0, lambda: seen.append("plain"))
        sim.run()
        assert seen == [(1, 2), "plain"]


class TestSimulatorArena:
    def _burst(self, sim: Simulator, rounds: int) -> None:
        def fanout(depth: int) -> None:
            if depth == 0:
                return
            for _ in range(3):
                sim.schedule_at(
                    sim.now + 1.0,
                    fanout,
                    args=(depth - 1,),
                    transient=True,
                )

        fanout(rounds)
        sim.run()

    def test_arena_recycles_in_cascades(self):
        sim = Simulator(recycle_events=True)
        self._burst(sim, 4)
        assert sim.events_recycled > 0

    def test_arena_off_by_default(self):
        sim = Simulator()
        self._burst(sim, 4)
        assert sim.events_recycled == 0

    def test_arena_identical_schedule(self):
        """Recycling changes allocation, never order or timing."""

        def run(recycle: bool) -> list[tuple[float, int]]:
            sim = Simulator(recycle_events=recycle)
            log: list[tuple[float, int]] = []

            def fire(tag: int) -> None:
                log.append((sim.now, tag))
                if tag < 20:
                    sim.schedule_at(
                        sim.now + 0.5, fire, args=(tag + 2,), transient=True
                    )

            sim.schedule_at(0.0, fire, args=(0,), transient=True)
            sim.schedule_at(0.0, fire, args=(1,), transient=True)
            sim.run()
            return log

        assert run(True) == run(False)

    def test_horizon_loop_also_recycles(self):
        sim = Simulator(recycle_events=True)
        for step in range(4):
            sim.schedule_at(float(step), lambda: None, transient=True)
        sim.run(until=1.5)
        recycled_mid = sim.events_recycled
        sim.schedule_at(1.6, lambda: None, transient=True)
        sim.run(until=10.0)
        assert sim.events_recycled >= recycled_mid
        assert sim.events_recycled > 0
