"""Tests for Byzantine behavior plug-ins."""
import pytest

from repro.adversary.behaviors import (
    CrashBehavior,
    FilteredHonestBehavior,
    ScriptStep,
    ScriptedBehavior,
    SplitBrainBehavior,
    fixed_delay_toward,
    pass_all,
    silent_toward,
)
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.sim.delays import FixedDelay
from repro.sim.process import Party
from repro.sim.runner import World, run_broadcast


class Gossip(Party):
    """Broadcaster (id 0) multicasts its input; everyone records receipt."""

    def __init__(self, world, pid, input_value=None):
        super().__init__(world, pid)
        self.input_value = input_value
        self.heard = {}

    def on_start(self):
        if self.input_value is not None:
            self.multicast(("val", self.input_value), include_self=False)

    def on_message(self, sender, payload):
        if payload[0] == "val":
            self.heard[sender] = payload[1]


def gossip_factory(world, pid):
    value = "v0" if pid == 0 else None
    return Gossip(world, pid, input_value=value)


class TestCrashBehavior:
    def test_crashed_party_sends_nothing(self):
        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(gossip_factory, CrashBehavior)
        world.run()
        assert world.agents[1].heard == {}
        assert world.agents[2].heard == {}


class TestScriptedBehavior:
    def test_script_plays_back_with_chosen_delays(self):
        def script(behavior):
            return [
                ScriptStep(time=1.0, recipient=1, payload=("val", "x")),
                ScriptStep(
                    time=1.0, recipient=2, payload=("val", "y"), delay=3.0
                ),
            ]

        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(
            gossip_factory,
            lambda w, pid: ScriptedBehavior(w, pid, script_builder=script),
        )
        world.run()
        assert world.agents[1].heard == {0: "x"}
        assert world.agents[2].heard == {0: "y"}
        # Delay override of 3.0: delivered at t=4.
        recvs = [
            e for e in world.agents[2].transcript.entries if e.kind == "recv"
        ]
        assert recvs[0].local_time == 4.0

    def test_script_can_sign_with_own_key(self):
        captured = {}

        class Verifier(Gossip):
            def on_message(self, sender, payload):
                captured[self.id] = self.verify(payload)

        def script(behavior):
            return [
                ScriptStep(
                    time=0.0, recipient=1, payload=behavior.signer.sign("m")
                )
            ]

        world = World(
            n=2, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(
            lambda w, pid: Verifier(w, pid),
            lambda w, pid: ScriptedBehavior(w, pid, script_builder=script),
        )
        world.run()
        assert captured[1] is True


class TestFilteredHonestBehavior:
    def test_pass_all_is_honest_equivalent(self):
        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(
            gossip_factory,
            lambda w, pid: FilteredHonestBehavior(
                w, pid, party_factory=gossip_factory, send_filter=pass_all
            ),
        )
        world.run()
        assert world.agents[1].heard == {0: "v0"}
        assert world.agents[2].heard == {0: "v0"}

    def test_silent_toward_group(self):
        world = World(
            n=4, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(
            gossip_factory,
            lambda w, pid: FilteredHonestBehavior(
                w,
                pid,
                party_factory=gossip_factory,
                send_filter=silent_toward(frozenset({1, 2})),
            ),
        )
        world.run()
        assert world.agents[1].heard == {}
        assert world.agents[2].heard == {}
        assert world.agents[3].heard == {0: "v0"}

    def test_fixed_delay_toward(self):
        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(
            gossip_factory,
            lambda w, pid: FilteredHonestBehavior(
                w,
                pid,
                party_factory=gossip_factory,
                send_filter=fixed_delay_toward({1: 5.0}),
            ),
        )
        world.run()
        recvs1 = [
            e for e in world.agents[1].transcript.entries if e.kind == "recv"
        ]
        recvs2 = [
            e for e in world.agents[2].transcript.entries if e.kind == "recv"
        ]
        assert recvs1[0].local_time == 5.0
        assert recvs2[0].local_time == 1.0  # default: policy delay

    def test_inner_party_can_receive(self):
        # Byzantine wrapping honest logic still processes incoming messages.
        class Repeater(Gossip):
            def on_message(self, sender, payload):
                super().on_message(sender, payload)
                if payload[0] == "val" and self.id != 0:
                    self.multicast(("echo", self.id), include_self=False)

        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({1})
        )
        echo_seen = {}

        class Listener(Gossip):
            def on_message(self, sender, payload):
                super().on_message(sender, payload)
                if payload[0] == "echo":
                    echo_seen[self.id] = sender

        def honest_factory(w, pid):
            value = "v0" if pid == 0 else None
            return Listener(w, pid, input_value=value)

        world.populate(
            honest_factory,
            lambda w, pid: FilteredHonestBehavior(
                w,
                pid,
                party_factory=lambda iw, ipid: Repeater(iw, ipid),
                send_filter=pass_all,
            ),
        )
        world.run()
        assert echo_seen.get(2) == 1


class TestSplitBrainEquivocation:
    def test_two_brains_send_different_values(self):
        behavior_factory = equivocating_broadcaster(
            make_broadcaster=lambda w, pid, v: Gossip(w, pid, input_value=v),
            groups={"zero": frozenset({1}), "one": frozenset({2})},
        )
        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(gossip_factory, behavior_factory)
        world.run()
        assert world.agents[1].heard == {0: "zero"}
        assert world.agents[2].heard == {0: "one"}

    def test_uncovered_party_hears_nothing(self):
        behavior_factory = equivocating_broadcaster(
            make_broadcaster=lambda w, pid, v: Gossip(w, pid, input_value=v),
            groups={"zero": frozenset({1})},
        )
        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(gossip_factory, behavior_factory)
        world.run()
        assert world.agents[2].heard == {}

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            equivocating_broadcaster(
                make_broadcaster=lambda w, pid, v: Gossip(w, pid, v),
                groups={
                    "a": frozenset({1, 2}),
                    "b": frozenset({2, 3}),
                },
            )

    def test_brains_share_one_signing_key(self):
        # Equivocating signatures must verify (it is the corrupted party's
        # own key) — that is exactly what equivocation detection detects.
        class SignedGossip(Gossip):
            def on_start(self):
                if self.input_value is not None:
                    self.multicast(
                        self.sign(("val", self.input_value)),
                        include_self=False,
                    )

            def on_message(self, sender, payload):
                if self.verify(payload):
                    self.heard[sender] = payload.payload[1]

        behavior_factory = equivocating_broadcaster(
            make_broadcaster=lambda w, pid, v: SignedGossip(
                w, pid, input_value=v
            ),
            groups={"x": frozenset({1}), "y": frozenset({2})},
        )
        world = World(
            n=3, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({0})
        )
        world.populate(
            lambda w, pid: SignedGossip(w, pid), behavior_factory
        )
        world.run()
        assert world.agents[1].heard == {0: "x"}
        assert world.agents[2].heard == {0: "y"}


class TestByzantineBudget:
    def test_budget_enforced(self):
        with pytest.raises(Exception):
            World(
                n=3,
                f=0,
                delay_policy=FixedDelay(1.0),
                byzantine=frozenset({0}),
            )


class TestEquivocatingVoter:
    """The ``equivocate_votes`` adversary double-signs per voting round."""

    def _run(self, *, n=7, f=2, byzantine=frozenset({5, 6}), **kwargs):
        from repro.adversary.behaviors import equivocate_votes
        from repro.protocols.brb_2round import Brb2Round

        return run_broadcast(
            n=n,
            f=f,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            byzantine=byzantine,
            behavior_factory=equivocate_votes(broadcaster=0, **kwargs),
        )

    def test_liveness_and_agreement_survive(self):
        result = self._run()
        assert result.all_honest_committed()
        assert result.agreement_holds()
        assert result.committed_value() == "v"

    def test_detection_path_exercised(self):
        result = self._run()
        # Every honest tracker that saw both votes flags each of the two
        # equivocators; early terminators may miss the second vote.
        assert result.equivocations_detected > 0

    def test_custom_second_value(self):
        result = self._run(second_value="decoy")
        assert result.committed_value() == "v"
        assert result.equivocations_detected > 0

    def test_honest_runs_detect_nothing(self):
        from repro.protocols.brb_2round import Brb2Round

        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
        )
        assert result.equivocations_detected == 0


class TestForgedVoteQuorum:
    """Deferred verification must reject a forged batch at the crossing."""

    def _run(self, *, mixed, delay_seed=None):
        from repro.adversary.behaviors import forge_vote_quorum
        from repro.protocols.brb_2round import Brb2Round
        from repro.sim.delays import UniformDelay

        policy = (
            UniformDelay(0.0, 1.0, seed=delay_seed)
            if delay_seed is not None
            else FixedDelay(1.0)
        )
        return run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=policy,
            byzantine=frozenset({5, 6}),
            behavior_factory=forge_vote_quorum(
                broadcaster=0, forged_value="forged", mixed=mixed
            ),
        )

    @pytest.mark.parametrize("seed", [None, 3, 11])
    def test_forged_batch_rejected_same_as_eager(self, seed):
        # The uniform forged batch crosses at the staging step, so a
        # receiver that skipped the crossing-time batch verification
        # would commit "forged"; the mixed batch never reaches staging
        # (the uniform-run gate bounces it to the scalar loop).  Both
        # rejection routes must end in the same commit outcome and the
        # same clean tallies as the eager path.
        batched = self._run(mixed=False, delay_seed=seed)
        eager = self._run(mixed=True, delay_seed=seed)
        for result in (batched, eager):
            assert result.all_honest_committed()
            assert result.agreement_holds()
            assert result.committed_value() == "v"
            # Forged votes fail verification before any tally touch:
            # no equivocators are ever flagged.
            assert result.equivocations_detected == 0
        assert dict(batched.commits) == dict(eager.commits)
        # The forged batch is never absorbed through the vectorized
        # path — rejection happens before commit_staged.
        honest_only = self._run(mixed=False, delay_seed=None)
        assert honest_only.committed_value() == "v"
