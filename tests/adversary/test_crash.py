"""Tests for timed crash behaviors and the mixed crash+equivocate factory."""
import pytest

from repro.adversary.behaviors import (
    CrashBehavior,
    crash_and_equivocate,
    crash_at,
)
from repro.protocols.brb_2round import Brb2Round
from repro.sim.delays import FixedDelay
from repro.sim.process import Party
from repro.sim.runner import World, run_broadcast
from repro.types import INF


class Chatter(Party):
    """Says hello on start, echoes back every hello; records everything."""

    def __init__(self, world, pid):
        super().__init__(world, pid)
        self.heard = []
        self.started_at = None

    def on_start(self):
        self.started_at = self.world.sim.now
        self.multicast(("hello", self.id), include_self=False)

    def on_message(self, sender, payload):
        self.heard.append((self.world.sim.now, sender, payload))


def _chatter_world(*, behavior_factory, n=4):
    world = World(
        n=n, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({n - 1})
    )
    world.populate(lambda w, pid: Chatter(w, pid), behavior_factory)
    world.run()
    return world


class TestBareCrashBehavior:
    def test_default_is_crash_from_start(self):
        world = _chatter_world(behavior_factory=CrashBehavior)
        crasher = world.agents[3]
        assert crasher.is_down(0.0) and crasher.is_down(1e9)
        # Nothing from party 3 ever reached an honest party.
        for pid in (0, 1, 2):
            senders = {s for _, s, _ in world.agents[pid].heard}
            assert senders == {0, 1, 2} - {pid}


class TestTimedCrashBehavior:
    def test_honest_until_crash_then_silent(self):
        world = _chatter_world(
            behavior_factory=crash_at(
                at=1.5, party_factory=lambda w, pid: Chatter(w, pid)
            )
        )
        crasher = world.agents[3]
        brain = crasher._brains[CrashBehavior.BRAIN]
        assert brain.started_at == 0.0
        # The brain's hello (sent at 0, up) went out...
        for pid in (0, 1, 2):
            senders = {s for _, s, _ in world.agents[pid].heard}
            assert 3 in senders
        # ...and the peers' hellos landed at t=1.0, still before the
        # crash; from 1.5 on the party is permanently dark.
        assert {s for _, s, _ in brain.heard} == {0, 1, 2}
        assert world.agents[3].is_down(1.5) and world.agents[3].is_down(1e9)

    def test_window_gates_deliveries_and_sends(self):
        world = _chatter_world(
            behavior_factory=crash_at(
                at=0.5,
                recover=1.5,
                party_factory=lambda w, pid: Chatter(w, pid),
            )
        )
        crasher = world.agents[3]
        assert not crasher.is_down(0.0)
        assert crasher.is_down(1.0)
        assert not crasher.is_down(1.5)
        brain = crasher._brains[CrashBehavior.BRAIN]
        # Hellos from 0/1/2 arrive at t=1.0 — inside [0.5, 1.5) — and are
        # lost (crash-faulty parties get no retransmission).
        assert brain.heard == []

    def test_covered_start_reboots_at_recovery(self):
        """A window covering the start offset delays the brain's start to
        the first recovery instant — a replica rebooting mid-protocol."""
        world = _chatter_world(
            behavior_factory=crash_at(
                at=0.0,
                recover=2.5,
                party_factory=lambda w, pid: Chatter(w, pid),
            )
        )
        brain = world.agents[3]._brains[CrashBehavior.BRAIN]
        assert brain.started_at == 2.5
        # Its late hello (sent at 2.5, after recovery) reaches everyone.
        for pid in (0, 1, 2):
            assert (3.5, 3, ("hello", 3)) in world.agents[pid].heard

    def test_crash_never_recovering_without_brain_stays_inert(self):
        world = _chatter_world(behavior_factory=crash_at(at=0.0))
        assert world.agents[3]._brains == {}
        assert world.agents[3].is_down(123.0)


class TestCrashAndEquivocate:
    def test_mixed_adversary_within_budget_still_commits(self):
        """f=3 budget split as one crasher + two equivocators: honest
        parties flag the double votes and commit the real value."""
        n, f = 10, 3
        byzantine = frozenset({7, 8, 9})
        result = run_broadcast(
            n=n,
            f=f,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            byzantine=byzantine,
            behavior_factory=crash_and_equivocate(
                broadcaster=0, crashers=frozenset({9})
            ),
            delay_policy=FixedDelay(1.0),
            instrumentation="full",
        )
        assert set(result.commits) == set(range(7))
        assert set(result.commits.values()) == {"v"}
        assert result.equivocations_detected > 0

    def test_crashers_route_to_timed_crash_behavior(self):
        world = World(
            n=4, f=1, delay_policy=FixedDelay(1.0), byzantine=frozenset({3})
        )
        build = crash_and_equivocate(
            broadcaster=0, crashers=frozenset({3}), crash_time=2.0
        )
        agent = build(world, 3)
        assert isinstance(agent, CrashBehavior)
        assert not agent.is_down(1.0)
        assert agent.is_down(2.0)
        assert agent.window.next_recovery_after(0.0) is None  # crash-stop
