"""The committed regression corpus: replay every reproducer in this dir.

Each ``*.json`` file here is a self-contained fault-plan reproducer
(see ``repro.analysis.chaos.write_reproducer``): protocol, tier, the
full plan, an optional reliable-link policy, and the expected outcome.
``expect: "clean"`` files pin scenarios that once failed (or that a gate
depends on) and must stay violation-free; ``expect: "violation"`` files
pin known-bad contrast cases that must *keep* failing, so a semantics
change cannot silently declare fatal loss survivable.

To commit a new reproducer: run ``python -m repro chaos --deep
--emit-reproducers <dir>`` (the nightly job uploads the same files as
artifacts), fix the bug it found, then copy the file here — the corpus
asserts the plan stays clean from then on.
"""
from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.chaos import load_reproducer, run_reproducer

CORPUS = sorted(Path(__file__).parent.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_reproducer_replays_to_its_expected_outcome(path):
    replay = run_reproducer(path)
    assert replay["ok"], (
        f"{path.name}: expected {replay['expect']}, got "
        f"{replay['record']['violation']}"
    )


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_reproducer_files_parse_cleanly(path):
    loaded = load_reproducer(path)
    assert loaded["expect"] in ("clean", "violation")
    assert loaded["note"], f"{path.name}: commit reproducers with a note"


def test_viewchange_reproducers_reach_view_2():
    viewchange = [p for p in CORPUS if "-viewchange-" in p.name]
    assert len(viewchange) >= 3  # one per psync protocol
    for path in viewchange:
        replay = run_reproducer(path)
        assert replay["record"]["max_commit_view"] >= 2, path.name
