"""Tests for the executable lower-bound witnesses.

Each theorem's witness must (a) machine-verify the proof's
indistinguishability claims and (b) exhibit a real agreement violation in
one of the constructed executions.  Companion tests run the *real*
protocols through comparable schedules and verify they stay safe.
"""
import pytest

from repro.lowerbounds import thm04_async_2round as thm04
from repro.lowerbounds import thm07_psync_3round as thm07
from repro.lowerbounds import thm08_sync_2delta as thm08
from repro.lowerbounds import thm09_sync_delta_delta as thm09
from repro.lowerbounds import thm10_sync_delta_15delta as thm10
from repro.lowerbounds import thm19_dishonest_majority as thm19
from repro.types import BOTTOM


@pytest.fixture(scope="module")
def reports():
    return {
        "thm04": thm04.run_witness(),
        "thm07": thm07.run_witness(),
        "thm08": thm08.run_witness(),
        "thm09": thm09.run_witness(),
        "thm10": thm10.run_witness(),
        "thm19": thm19.run_witness(),
    }


class TestTheorem4:
    def test_indistinguishability_holds(self, reports):
        assert reports["thm04"].all_checks_hold

    def test_agreement_violation_exhibited(self, reports):
        violation = reports["thm04"].violation
        assert violation is not None
        assert violation.execution == "execution-3"
        assert {violation.value_a, violation.value_b} == {0, 1}

    def test_strawman_commits_in_one_round_in_good_executions(self, reports):
        world = reports["thm04"].executions["execution-1"]
        for party in world.honest_parties():
            assert party.committed_value == 0

    def test_real_protocol_survives_the_schedule(self):
        # 2-round-BRB under the same equivocation split: agreement holds.
        from repro.adversary.broadcaster import equivocating_broadcaster
        from repro.protocols.brb_2round import Brb2Round
        from repro.sim.delays import FixedDelay
        from repro.sim.runner import run_broadcast

        behavior = equivocating_broadcaster(
            make_broadcaster=Brb2Round.broadcaster_factory(broadcaster=0),
            groups={0: thm04.GROUP_A, 1: thm04.GROUP_B},
        )
        result = run_broadcast(
            n=thm04.N,
            f=thm04.F,
            party_factory=Brb2Round.factory(broadcaster=0, input_value=0),
            delay_policy=FixedDelay(thm04.DELAY),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
        )
        assert result.agreement_holds()


class TestTheorem7:
    def test_violation_at_5f_minus_2(self, reports):
        violation = reports["thm07"].violation
        assert violation is not None
        assert "v" in (violation.value_a, violation.value_b)

    def test_fast_committer_used_two_rounds(self, reports):
        world = reports["thm07"].executions["attack"]
        x1 = world.agents[thm07.X1]
        assert x1.committed_value == "v"
        # Committed within the first view (well before the 4*Delta timeout).
        assert x1.commit_global_time < 4 * thm07.DELTA

    def test_vbb_at_5f_minus_1_survives_analogous_attack(self):
        """The paper's protocol defeats the attack one party above."""
        commits = thm07.run_vbb_survival()
        # x1 fast-commits v; the certificate check (equivocation case)
        # locks v during the view change, so everyone else re-commits v.
        assert commits[3] == "v"
        assert set(commits.values()) == {"v"}
        assert len(commits) == 7  # all honest parties

    def test_fab_at_designed_resilience_survives(self):
        """FaB at n = 5f+1: the majority argument holds (>= 2f+1 reports)."""
        from repro.adversary.behaviors import ScriptStep, ScriptedBehavior
        from repro.adversary.broadcaster import equivocating_broadcaster
        from repro.protocols.psync.fab import VIEWCHANGE, VOTE, VOTES, FabPsync
        from repro.sim.delays import FunctionDelay
        from repro.sim.runner import World

        n, f = 11, 2
        broadcaster, z, x1 = 0, 10, 3
        x_group = tuple(range(3, 10))  # 7 honest
        y_group = (1, 2)
        stall = 30.0  # "GST": the adversary must deliver eventually

        def decide(sender, recipient, payload, send_time):
            if (
                hasattr(payload, "payload")
                and isinstance(payload.payload, tuple)
                and payload.payload
                and payload.payload[0] == VOTE
                and payload.payload[2] == 1
                and sender in x_group
                and sender != x1
                and recipient != x1
            ):
                return stall
            if (
                isinstance(payload, tuple)
                and payload
                and payload[0] == VOTES
                and sender == x1
            ):
                return stall
            return 0.1

        def z_script(behavior):
            steps = [
                ScriptStep(
                    time=0.25,
                    recipient=x1,
                    payload=behavior.signer.sign((VOTE, "v", 1)),
                )
            ]
            viewchange = behavior.signer.sign((VIEWCHANGE, 1, "w"))
            for pid in (*x_group, *y_group):
                steps.append(
                    ScriptStep(time=4.05, recipient=pid, payload=viewchange)
                )
            return steps

        split = equivocating_broadcaster(
            make_broadcaster=FabPsync.broadcaster_factory(
                broadcaster=broadcaster, big_delta=1.0
            ),
            groups={"v": frozenset(x_group), "w": frozenset(y_group)},
        )

        def behaviors(world, pid):
            if pid == broadcaster:
                return split(world, pid)
            return ScriptedBehavior(world, pid, script_builder=z_script)

        world = World(
            n=n,
            f=f,
            delay_policy=FunctionDelay(decide),
            byzantine=frozenset({broadcaster, z}),
        )
        world.populate(
            FabPsync.factory(
                broadcaster=broadcaster, input_value="v", big_delta=1.0
            ),
            behaviors,
        )
        world.run(until=100.0)
        commits = {
            p.id: p.committed_value
            for p in world.honest_parties()
            if p.has_committed
        }
        assert commits[x1] == "v"
        # View-change reports: 6 x-parties say v >= 2f+1 = 5 majority.
        assert set(commits.values()) == {"v"}
        assert len(commits) == len(world.honest_ids)


class TestTheorem8:
    def test_indistinguishability_holds(self, reports):
        assert reports["thm08"].all_checks_hold

    def test_violation(self, reports):
        violation = reports["thm08"].violation
        assert violation is not None
        assert violation.execution == "execution-3"

    def test_strawman_beats_the_bound_in_good_case(self, reports):
        world = reports["thm08"].executions["execution-1"]
        for party in world.honest_parties():
            assert party.commit_local_time == thm08.COMMIT_AT
            assert party.commit_local_time < 2 * thm08.DELTA


class TestTheorem9:
    def test_indistinguishability_holds(self, reports):
        assert reports["thm09"].all_checks_hold

    def test_violation(self, reports):
        violation = reports["thm09"].violation
        assert violation is not None
        assert violation.execution == "execution-3"
        assert {violation.value_a, violation.value_b} == {0, 1}

    def test_strawman_commits_fast_in_good_executions(self, reports):
        world = reports["thm09"].executions["execution-1"]
        commits = {
            p.id: p.commit_global_time
            for p in world.honest_parties()
            if p.has_committed
        }
        # The quorum strawman reaches 2*delta, beating Delta + delta.
        assert commits
        assert all(t <= 2 * thm09.DELTA + 1e-9 for t in commits.values())

    def test_fig5_protocol_survives_the_schedule(self):
        # The real (Delta+delta)-n/3-BB under the same split: agreement.
        from repro.adversary.behaviors import (
            FilteredHonestBehavior,
            pass_all,
        )
        from repro.adversary.broadcaster import equivocating_broadcaster
        from repro.protocols.sync.bb_delta_delta_n3 import BbDeltaDeltaN3
        from repro.sim.delays import PerLinkDelay
        from repro.sim.runner import World

        links = {}
        for a in thm09.GROUP_A:
            for b in thm09.GROUP_B:
                links[(a, b)] = thm09.BIG_DELTA
                links[(b, a)] = thm09.BIG_DELTA
        split = equivocating_broadcaster(
            make_broadcaster=BbDeltaDeltaN3.broadcaster_factory(
                broadcaster=0, big_delta=thm09.BIG_DELTA
            ),
            groups={
                0: frozenset(thm09.GROUP_A),
                1: frozenset(thm09.GROUP_B),
            },
        )

        def behaviors(world, pid):
            if pid == 0:
                return split(world, pid)
            return FilteredHonestBehavior(
                world,
                pid,
                party_factory=lambda w, p: BbDeltaDeltaN3(
                    w, p, broadcaster=0, input_value=None,
                    big_delta=thm09.BIG_DELTA,
                ),
                send_filter=pass_all,
            )

        world = World(
            n=thm09.N,
            f=thm09.F,
            delay_policy=PerLinkDelay(links, default=thm09.DELTA),
            byzantine=frozenset({0, thm09.OTHER_C}),
        )
        world.populate(
            BbDeltaDeltaN3.factory(
                broadcaster=0, input_value=0, big_delta=thm09.BIG_DELTA
            ),
            behaviors,
        )
        world.run(until=100.0)
        commits = {
            p.committed_value
            for p in world.honest_parties()
            if p.has_committed
        }
        assert len(commits) <= 1


class TestTheorem10:
    def test_all_four_indistinguishability_claims_hold(self, reports):
        report = reports["thm10"]
        assert report.all_checks_hold
        assert len(report.checks) == 4

    def test_g_commits_0_in_e2_and_h_commits_1_in_e3(self, reports):
        report = reports["thm10"]
        e2, e3 = report.executions["E2"], report.executions["E3"]
        assert e2.agents[thm10.G].committed_value == 0
        assert e3.agents[thm10.H].committed_value == 1
        # Both beat the Delta + 1.5*delta bound (the strawman's flaw).
        assert e2.agents[thm10.G].commit_global_time < thm10.CUTOFF
        assert e3.agents[thm10.H].commit_global_time < thm10.CUTOFF

    def test_violation(self, reports):
        violation = reports["thm10"].violation
        assert violation is not None
        assert violation.execution in ("E2", "E3")

    def test_fig9_protocol_survives_the_same_worlds(self):
        # The real (Delta+1.5delta)-BB run through the E2 schedule: no
        # honest disagreement (it is built for unsynchronized start).
        from repro.adversary.behaviors import (
            FilteredHonestBehavior,
            SplitBrainBehavior,
            pass_all,
        )
        from repro.protocols.sync.bb_delta_15delta import BbDelta15Delta
        from repro.sim.delays import PerLinkDelay
        from repro.sim.runner import World
        from repro.types import INF

        delta, big_delta, skew = thm10.DELTA, thm10.BIG_DELTA, thm10.SKEW
        links = {
            (thm10.G, thm10.C): big_delta,
            (thm10.C, thm10.G): big_delta,
            (thm10.C, thm10.A): big_delta - delta,
            (thm10.A, thm10.C): big_delta,
            (thm10.B_BCAST, thm10.C): 1.5 * delta,
            (thm10.C, thm10.B_BCAST): 0.5 * delta,
            (thm10.G, thm10.H): INF,
            (thm10.H, thm10.G): INF,
            (thm10.C, thm10.H): 0.5 * delta,
            (thm10.H, thm10.C): 1.5 * delta,
            (thm10.A, thm10.H): big_delta + skew,
            (thm10.H, thm10.A): big_delta - skew,
        }
        offsets = [0.0] * 5
        offsets[thm10.C] = skew

        def make_party(value):
            def build(world, pid):
                return BbDelta15Delta(
                    world, pid, broadcaster=thm10.B_BCAST,
                    input_value=value, big_delta=big_delta,
                )
            return build

        def behaviors(world, pid):
            if pid == thm10.B_BCAST:
                return SplitBrainBehavior(
                    world,
                    pid,
                    brain_factories={
                        0: make_party(0),
                        1: make_party(1),
                    },
                    membership=lambda p: (
                        0 if p in (thm10.G, thm10.A)
                        else 1 if p in (thm10.C, thm10.H) else None
                    ),
                )
            return FilteredHonestBehavior(
                world, pid,
                party_factory=make_party(None),
                send_filter=pass_all,
            )

        world = World(
            n=5,
            f=2,
            delay_policy=PerLinkDelay(links, default=delta),
            byzantine=frozenset({thm10.B_BCAST, thm10.H}),
            start_offsets=offsets,
        )
        world.populate(make_party(0), behaviors)
        world.run(until=100.0)
        commits = {
            p.committed_value
            for p in world.honest_parties()
            if p.has_committed
        }
        assert len(commits) <= 1


class TestTheorem19:
    def test_chain_indistinguishability_holds(self, reports):
        assert reports["thm19"].all_checks_hold
        assert len(reports["thm19"].checks) == thm19.D

    def test_violation_in_middle_execution(self, reports):
        violation = reports["thm19"].violation
        assert violation is not None

    def test_endpoints_commit_their_values(self, reports):
        report = reports["thm19"]
        exec0 = report.executions["execution-0"]
        exec5 = report.executions[f"execution-{thm19.D}"]
        assert exec0.agents[1].committed_value == 0
        assert exec5.agents[thm19.D].committed_value == 1

    def test_strawman_beats_the_bound(self, reports):
        bound = (thm19.N // thm19.H - 1) * thm19.BIG_DELTA
        assert thm19.COMMIT_AT < bound

    def test_wan_protocol_survives_equivocation_seeding(self):
        # The real dishonest-majority protocol under the same seeded
        # split (0 low side, 1 high side): equivocation evidence spreads
        # through the vote TrustCasts and everyone lands on BOTTOM.
        from repro.adversary.behaviors import ScriptedBehavior, ScriptStep
        from repro.protocols.sync.dishonest_majority import (
            PROPOSE as WAN_PROPOSE,
            WanStyleBb,
        )
        from repro.sim.delays import FixedDelay
        from repro.sim.runner import World

        def script(behavior):
            p0 = behavior.signer.sign((WAN_PROPOSE, 0))
            p1 = behavior.signer.sign((WAN_PROPOSE, 1))
            steps = [
                ScriptStep(time=0.0, recipient=pid, payload=p0)
                for pid in thm19.LOW_SIDE
            ]
            steps += [
                ScriptStep(time=0.0, recipient=pid, payload=p1)
                for pid in thm19.HIGH_SIDE
            ]
            return steps

        world = World(
            n=thm19.N,
            f=thm19.F,
            delay_policy=FixedDelay(0.2),
            byzantine=frozenset({0}),
        )
        world.populate(
            WanStyleBb.factory(broadcaster=0, input_value=0, big_delta=1.0),
            lambda w, pid: ScriptedBehavior(w, pid, script_builder=script),
        )
        world.run(until=100.0)
        commits = {
            p.committed_value
            for p in world.honest_parties()
            if p.has_committed
        }
        assert commits == {BOTTOM}
