"""Tests for the PBFT (3-round) and FaB (2-round, 5f+1) baselines."""
import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.protocols.psync.fab import FabPsync
from repro.protocols.psync.pbft import PbftPsync
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.runner import run_broadcast

DELTA = 1.0


def factory(cls, value="v", **kwargs):
    kwargs.setdefault("big_delta", DELTA)
    return cls.factory(broadcaster=0, input_value=value, **kwargs)


class TestPbftGoodCase:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3), (13, 4)])
    def test_commits_broadcaster_value(self, n, f):
        result = run_broadcast(
            n=n, f=f, party_factory=factory(PbftPsync),
            delay_policy=FixedDelay(0.1),
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
    def test_good_case_latency_is_3_rounds(self, n, f):
        result = run_broadcast(
            n=n, f=f, party_factory=factory(PbftPsync),
            delay_policy=FixedDelay(0.1),
        )
        assert result.round_latency() == 3

    def test_three_rounds_under_heterogeneous_delays(self):
        result = run_broadcast(
            n=7, f=2, party_factory=factory(PbftPsync),
            delay_policy=UniformDelay(0.05, 0.9, seed=5),
        )
        assert result.round_latency() == 3

    def test_resilience_boundary(self):
        with pytest.raises(ValueError):
            run_broadcast(
                n=6, f=2, party_factory=factory(PbftPsync),
                delay_policy=FixedDelay(0.1),
            )


class TestPbftFaults:
    def test_crashed_leader_view_change(self):
        result = run_broadcast(
            n=7, f=2, party_factory=factory(PbftPsync, fallback_value="fb"),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()
        assert result.committed_value() == "fb"

    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_equivocating_leader_agreement(self, split):
        behavior = equivocating_broadcaster(
            make_broadcaster=PbftPsync.broadcaster_factory(
                broadcaster=0, big_delta=DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + split)),
                "one": frozenset(range(1 + split, 7)),
            },
        )
        result = run_broadcast(
            n=7, f=2, party_factory=factory(PbftPsync),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
            until=500.0,
        )
        assert result.agreement_holds()
        assert result.all_honest_committed()

    def test_crashed_followers_unaffected(self):
        result = run_broadcast(
            n=7, f=2, party_factory=factory(PbftPsync),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({5, 6}),
            behavior_factory=CrashBehavior,
        )
        assert result.committed_value() == "v"
        assert result.round_latency() == 3


class TestFabGoodCase:
    @pytest.mark.parametrize("n,f", [(6, 1), (11, 2), (16, 3)])
    def test_commits_in_2_rounds(self, n, f):
        result = run_broadcast(
            n=n, f=f, party_factory=factory(FabPsync),
            delay_policy=FixedDelay(0.1),
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.round_latency() == 2

    def test_resilience_boundary_is_5f_plus_1(self):
        # FaB needs n >= 5f+1; the paper's protocol needs only 5f-1.
        with pytest.raises(ValueError):
            run_broadcast(
                n=10, f=2, party_factory=factory(FabPsync),
                delay_policy=FixedDelay(0.1),
            )


class TestFabFaults:
    def test_crashed_leader_view_change(self):
        result = run_broadcast(
            n=11, f=2, party_factory=factory(FabPsync, fallback_value="fb"),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "fb"

    @pytest.mark.parametrize("split", [2, 5])
    def test_equivocating_leader_agreement(self, split):
        behavior = equivocating_broadcaster(
            make_broadcaster=FabPsync.broadcaster_factory(
                broadcaster=0, big_delta=DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + split)),
                "one": frozenset(range(1 + split, 11)),
            },
        )
        result = run_broadcast(
            n=11, f=2, party_factory=factory(FabPsync),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
            until=500.0,
        )
        assert result.agreement_holds()
        assert result.all_honest_committed()
