"""Tests for the unauthenticated setting (paper Section 7).

Phase-king BA (no signatures, n > 3f) and the 3delta-BB built on it —
the open-problem upper bound the paper cites (gap to the 2delta lower
bound).
"""
import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.net.synchrony import SynchronyModel
from repro.protocols.phase_king import PhaseKingBa
from repro.protocols.sync.bb_2delta import Bb2Delta
from repro.protocols.sync.bb_unauth_3delta import BbUnauth3Delta
from repro.sim.process import Party
from repro.sim.runner import World, run_broadcast
from repro.types import BOTTOM

BIG_DELTA = 1.0


class PkHarness(Party):
    """Minimal host running one phase-king instance."""

    def __init__(self, world, pid, *, input_value):
        super().__init__(world, pid)
        self.input_value = input_value
        self.decision = None
        self._ba = PhaseKingBa(
            self, tag="t", big_delta=BIG_DELTA, on_decide=self._decided
        )

    def on_start(self):
        self._ba.start(self.input_value)

    def on_message(self, sender, payload):
        self._ba.handle(sender, payload)

    def _decided(self, value):
        self.decision = value


def run_pk(n, f, inputs, *, delta=1.0, skew=0.0, byzantine=frozenset(),
           behavior_factory=None):
    model = SynchronyModel(delta=delta, big_delta=BIG_DELTA, skew=skew)
    world = World(
        n=n,
        f=f,
        delay_policy=model.worst_case_policy(),
        byzantine=byzantine,
        start_offsets=model.offsets(n, pattern="staggered"),
    )
    world.populate(
        lambda w, pid: PkHarness(w, pid, input_value=inputs[pid]),
        behavior_factory,
    )
    world.run(until=2000.0)
    return {
        pid: agent.decision
        for pid, agent in world.agents.items()
        if pid not in byzantine
    }


class TestPhaseKing:
    def test_validity_unanimous_inputs(self):
        decisions = run_pk(4, 1, ["v"] * 4)
        assert all(d == "v" for d in decisions.values())

    def test_agreement_mixed_inputs(self):
        decisions = run_pk(7, 2, ["a", "b", "a", "b", "a", "b", "a"])
        assert len(set(decisions.values())) == 1

    def test_agreement_with_crashed_parties(self):
        decisions = run_pk(
            7, 2, ["a", "a", "a", "a", "a", "x", "x"],
            byzantine=frozenset({5, 6}), behavior_factory=CrashBehavior,
        )
        assert all(d == "a" for d in decisions.values())

    def test_agreement_with_crashed_king(self):
        # Party 0 is the king of phase 0; crashing it must not break BA.
        decisions = run_pk(
            4, 1, ["x", "a", "b", "a"],
            byzantine=frozenset({0}), behavior_factory=CrashBehavior,
        )
        assert len(set(decisions.values())) == 1

    def test_validity_under_skew_and_max_delay(self):
        decisions = run_pk(4, 1, ["v"] * 4, delta=1.0, skew=1.0)
        assert all(d == "v" for d in decisions.values())

    def test_f_zero(self):
        decisions = run_pk(3, 0, ["v"] * 3)
        assert all(d == "v" for d in decisions.values())


class TestUnauth3DeltaBb:
    def run_bb(self, n, f, *, delta, skew=0.0, byzantine=frozenset(),
               behavior_factory=None, value="v", until=2000.0):
        model = SynchronyModel(delta=delta, big_delta=BIG_DELTA, skew=skew)
        return run_broadcast(
            n=n,
            f=f,
            party_factory=BbUnauth3Delta.factory(
                broadcaster=0, input_value=value, big_delta=BIG_DELTA
            ),
            delay_policy=model.worst_case_policy(),
            byzantine=byzantine,
            behavior_factory=behavior_factory,
            start_offsets=model.offsets(n, pattern="staggered"),
            until=until,
        )

    @pytest.mark.parametrize("delta", [0.1, 0.25, 0.5, 1.0])
    def test_good_case_latency_is_3_delta(self, delta):
        result = self.run_bb(7, 2, delta=delta)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(3 * delta)

    def test_gap_to_authenticated_optimum(self):
        # Section 7's open gap: 3*delta unauthenticated vs 2*delta
        # authenticated, same regime f < n/3.
        delta = 0.25
        unauth = self.run_bb(7, 2, delta=delta)
        model = SynchronyModel(delta=delta, big_delta=BIG_DELTA, skew=0.0)
        auth = run_broadcast(
            n=7,
            f=2,
            party_factory=Bb2Delta.factory(
                broadcaster=0, input_value="v", big_delta=BIG_DELTA
            ),
            delay_policy=model.worst_case_policy(),
        )
        assert unauth.latency_from(0.0) == pytest.approx(3 * delta)
        assert auth.latency_from(0.0) == pytest.approx(2 * delta)

    def test_resilience_boundary(self):
        with pytest.raises(ValueError):
            self.run_bb(6, 2, delta=0.5)

    def test_crashed_broadcaster_commits_default(self):
        result = self.run_bb(
            7, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=CrashBehavior,
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    @pytest.mark.parametrize("split", [(3, 3), (2, 4), (1, 5)])
    def test_equivocating_broadcaster_agreement(self, split):
        left, _right = split
        behavior = equivocating_broadcaster(
            make_broadcaster=BbUnauth3Delta.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + left)),
                "one": frozenset(range(1 + left, 7)),
            },
        )
        result = self.run_bb(
            7, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=behavior,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()

    def test_crashed_followers_unaffected(self):
        result = self.run_bb(
            7, 2, delta=0.25,
            byzantine=frozenset({5, 6}), behavior_factory=CrashBehavior,
        )
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(3 * 0.25)
