"""View-change carryover: the view-1 value must survive into view >= 2.

Direct unit tests (no chaos engine) for the bad-case machinery of the
three psync protocols.  The view-1 leader proposes and every party
votes/prepares, but the *commit-phase* messages of view 1 are lost, so
nobody commits before the view timer expires.  The view change must then
carry the view-1 value forward — via the prepared certificate (PBFT),
the reported latest vote (FaB) or the locked timeout certificate (VBB) —
and the view-2 leader must re-propose it.  ``fallback_value`` is poisoned
so a protocol that forgets its lock and lets the new leader choose
freely fails loudly instead of silently agreeing on the wrong value.

Also pins the crash-recovery hardening: a party that was down exactly
when its view-1 timer fired must re-announce the suppressed view-change
message on recovery, completing a view change that cannot reach quorum
without it.
"""
from __future__ import annotations

from repro.adversary.behaviors import CrashBehavior, crash_at
from repro.protocols.psync import fab, pbft, vbb_5f1
from repro.protocols.psync.fab import FabPsync
from repro.protocols.psync.pbft import PbftPsync
from repro.protocols.psync.vbb_5f1 import PsyncVbb5f1
from repro.sim.delays import FunctionDelay
from repro.sim.runner import World
from repro.types import INF

DELTA = 1.0
POISON = "poison-fallback"  # must never be committed in these tests


def _run(cls, n, f, delays, *, until=200.0):
    world = World(n=n, f=f, delay_policy=FunctionDelay(delays))
    world.populate(
        cls.factory(
            broadcaster=0,
            input_value="v",
            big_delta=DELTA,
            fallback_value=POISON,
        )
    )
    world.run(until=until)
    return world


def _assert_carried_into_view2(world):
    parties = world.honest_parties()
    assert all(p.has_committed for p in parties)
    assert {p.committed_value for p in parties} == {"v"}
    assert {p.commit_view for p in parties} == {2}
    # The commit happened after the view-1 timer (4 * Delta) expired.
    assert min(p.commit_global_time for p in parties) > 4 * DELTA


class TestPreparedCertificateCarryover:
    def test_pbft_reproposes_the_prepared_value(self):
        # Every view-1 commit vote vanishes: all parties prepare "v" and
        # lock it, but cannot commit until the view-2 leader re-proposes
        # the highest prepared certificate's value.
        def delays(sender, recipient, payload, t):
            body = getattr(payload, "payload", None)
            if (
                isinstance(body, tuple)
                and len(body) == 3
                and body[0] == pbft.COMMIT
                and body[2] == 1
            ):
                return INF
            return 0.1

        _assert_carried_into_view2(_run(PbftPsync, 4, 1, delays))

    def test_fab_reproposes_the_majority_reported_vote(self):
        # Every view-1 vote vanishes: all parties record latest_vote =
        # ("v", 1) and report it in their view changes; the majority rule
        # forces the view-2 leader to re-propose "v".
        def delays(sender, recipient, payload, t):
            body = getattr(payload, "payload", None)
            if (
                isinstance(body, tuple)
                and len(body) == 3
                and body[0] == fab.VOTE
                and body[2] == 1
            ):
                return INF
            return 0.1

        _assert_carried_into_view2(_run(FabPsync, 6, 1, delays))

    def test_vbb_locks_the_value_through_the_timeout_certificate(self):
        # Every view-1 vote entry vanishes: all parties hold a voted pair
        # for "v", their timeouts form a certificate locking "v", and the
        # view-2 leader must propose the locked value.
        def delays(sender, recipient, payload, t):
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == vbb_5f1.VOTE
            ):
                pair = payload[1].payload
                if pair.payload[2] == 1:
                    return INF
            return 0.1

        _assert_carried_into_view2(_run(PsyncVbb5f1, 4, 1, delays))


class TestRecoverThenCommitInView2:
    def test_recovered_party_completes_the_view_change(self):
        # Leader 0's view-1 proposal vanishes (a view change is needed)
        # and party 2 is dark for the whole run, so the view-change
        # quorum of 3 is exactly {0, 1, 3} — and party 3 is inside a
        # crash window when its view-1 timer fires at t=4.  Its timeout
        # is marked but the VIEWCHANGE multicast is suppressed; only the
        # on_recover re-announce at t=5 lets the view change complete.
        def delays(sender, recipient, payload, t):
            if sender == 0 and t < 2.0:
                return INF  # the leader's proposal never arrives
            if sender == 2:
                return INF  # dark party: quorum needs the recoverer
            return 0.1

        factory = PbftPsync.factory(
            broadcaster=0, input_value="v", big_delta=DELTA,
            fallback_value="fb",
        )
        world = World(
            n=4,
            f=1,
            delay_policy=FunctionDelay(delays),
            byzantine=frozenset({3}),
        )
        world.populate(
            factory, crash_at(at=3.5, recover=5.0, party_factory=factory)
        )
        world.run(until=200.0)

        # Nothing was prepared in view 1, so the view-2 leader proposes
        # its fallback — but only after the recovered party's re-announced
        # view change closes the quorum at t > 5.
        honest = world.honest_parties()
        assert all(p.has_committed for p in honest)
        assert {p.committed_value for p in honest} == {"fb"}
        assert {p.commit_view for p in honest} == {2}
        assert min(p.commit_global_time for p in honest) > 5.0
        brain = world.agents[3]._brains[CrashBehavior.BRAIN]
        assert brain.has_committed and brain.commit_view == 2
        assert brain.committed_value == "fb"
