"""Tests for the (5f-1)-psync-VBB protocol (Figure 3)."""
import pytest

from repro.adversary.behaviors import (
    CrashBehavior,
    FilteredHonestBehavior,
    silent_toward,
)
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.net.partial_synchrony import PartialSynchronyModel
from repro.protocols.psync.vbb_5f1 import PsyncVbb5f1
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.runner import run_broadcast

DELTA = 1.0


def vbb_factory(n, f, value="v", **kwargs):
    kwargs.setdefault("big_delta", DELTA)
    return PsyncVbb5f1.factory(broadcaster=0, input_value=value, **kwargs)


def run_good_case(n, f, *, policy=None, value="v", **kwargs):
    return run_broadcast(
        n=n,
        f=f,
        party_factory=vbb_factory(n, f, value, **kwargs),
        delay_policy=policy or FixedDelay(0.1),
    )


class TestGoodCase:
    @pytest.mark.parametrize("n,f", [(4, 1), (9, 2), (14, 3), (24, 5)])
    def test_all_commit_broadcaster_value(self, n, f):
        result = run_good_case(n, f)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    @pytest.mark.parametrize("n,f", [(4, 1), (9, 2), (14, 3)])
    def test_good_case_latency_is_2_rounds(self, n, f):
        result = run_good_case(n, f)
        assert result.round_latency() == 2

    def test_f1_special_case_n4(self):
        # The paper highlights f=1: n = 4 = 3f+1 = 5f-1, so 2 rounds beat
        # 3-round PBFT at PBFT's own minimal configuration.
        result = run_good_case(4, 1)
        assert result.round_latency() == 2

    def test_two_rounds_under_heterogeneous_delays(self):
        result = run_good_case(
            9, 2, policy=UniformDelay(0.05, 0.9, seed=3)
        )
        assert result.round_latency() == 2
        assert result.committed_value() == "v"

    def test_resilience_boundary_rejected(self):
        with pytest.raises(ValueError):
            run_good_case(8, 2)  # n = 5f - 2

    def test_gst_policy_good_case(self):
        model = PartialSynchronyModel(big_delta=DELTA, gst=0.0)
        result = run_good_case(9, 2, policy=model.stable_policy())
        assert result.round_latency() == 2


class TestExternalValidity:
    def test_committed_value_is_externally_valid(self):
        result = run_good_case(
            9, 2, external_validity=lambda v: v == "v"
        )
        assert result.committed_value() == "v"

    def test_invalid_broadcaster_value_is_ignored(self):
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=vbb_factory(
                9, 2, "bad", external_validity=lambda v: v != "bad",
                fallback_value="good",
            ),
            delay_policy=FixedDelay(0.1),
            until=200.0,
        )
        # Nobody may commit "bad"; the view change may commit a fallback.
        assert all(v != "bad" for v in result.commits.values())
        assert result.agreement_holds()


class TestViewChange:
    def test_crashed_leader_view_change_commits(self):
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=vbb_factory(9, 2, fallback_value="fb"),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()
        # The broadcaster never proposed: any externally valid value works;
        # with round-robin, view 2's leader proposes its fallback.
        assert result.committed_value() == "fb"

    def test_silent_toward_half_still_commits_via_forwarding(self):
        # Leader proposes only to a bare quorum; their votes + forwarded
        # commit quorums must carry everyone else.
        n, f = 9, 2
        quorum_group = frozenset(range(0, n - f))
        starved = frozenset(range(n - f, n))

        def behavior(world, pid):
            return FilteredHonestBehavior(
                world,
                pid,
                party_factory=lambda w, p: PsyncVbb5f1(
                    w, p, broadcaster=0, input_value="v", big_delta=DELTA
                ),
                send_filter=silent_toward(starved),
            )

        result = run_broadcast(
            n=n,
            f=f,
            party_factory=vbb_factory(n, f),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
            until=500.0,
        )
        assert result.agreement_holds()
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    def test_equivocating_leader_agreement_holds(self):
        n, f = 9, 2
        behavior = equivocating_broadcaster(
            make_broadcaster=PsyncVbb5f1.broadcaster_factory(
                broadcaster=0, big_delta=DELTA
            ),
            groups={
                "zero": frozenset(range(1, 5)),
                "one": frozenset(range(5, 9)),
            },
        )
        result = run_broadcast(
            n=n,
            f=f,
            party_factory=vbb_factory(n, f),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
            until=500.0,
        )
        assert result.agreement_holds()
        assert result.all_honest_committed()
        # The committed value must be one of the equivocated values or a
        # later leader's choice; either way it is unique (checked above).

    @pytest.mark.parametrize("split", [2, 3, 4, 5, 6])
    def test_equivocation_splits_never_violate_agreement(self, split):
        n, f = 9, 2
        behavior = equivocating_broadcaster(
            make_broadcaster=PsyncVbb5f1.broadcaster_factory(
                broadcaster=0, big_delta=DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + split)),
                "one": frozenset(range(1 + split, 9)),
            },
        )
        result = run_broadcast(
            n=n,
            f=f,
            party_factory=vbb_factory(n, f),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
            until=500.0,
        )
        assert result.agreement_holds()
        assert result.all_honest_committed()

    def test_crashed_followers_good_case_unaffected(self):
        n, f = 9, 2
        result = run_broadcast(
            n=n,
            f=f,
            party_factory=vbb_factory(n, f),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({7, 8}),
            behavior_factory=CrashBehavior,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.round_latency() == 2


class TestLateGst:
    def test_commits_after_gst_with_adversarial_prefix(self):
        # GST at t=20: pre-GST messages are maximally delayed; the
        # protocol must churn views and then commit after GST.
        model = PartialSynchronyModel(big_delta=DELTA, gst=20.0)
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=vbb_factory(9, 2),
            delay_policy=model.policy(),
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()

    def test_commit_times_exceed_gst_when_views_churn(self):
        model = PartialSynchronyModel(big_delta=DELTA, gst=20.0)
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=vbb_factory(9, 2),
            delay_policy=model.policy(),
            until=500.0,
        )
        # With every pre-GST message stalled to the GST cap, commits land
        # after GST.
        assert all(t > 0 for t in result.commit_global_times.values())
