"""Tests for 2-round-BRB (Figure 1) and the Bracha baseline."""
import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster

from repro.protocols.brb_2round import Brb2Round
from repro.protocols.brb_bracha import BrachaBrb
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.runner import run_broadcast
from repro.types import validate_resilience


def run_good_case(cls, n, f, *, policy=None, value="v"):
    return run_broadcast(
        n=n,
        f=f,
        party_factory=cls.factory(broadcaster=0, input_value=value),
        delay_policy=policy or FixedDelay(1.0),
    )


class TestBrb2RoundGoodCase:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3), (31, 10)])
    def test_all_commit_broadcaster_value(self, n, f):
        result = run_good_case(Brb2Round, n, f)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (13, 4)])
    def test_good_case_latency_is_2_rounds(self, n, f):
        result = run_good_case(Brb2Round, n, f)
        assert result.round_latency() == 2

    def test_two_rounds_under_heterogeneous_delays(self):
        result = run_good_case(
            Brb2Round, 7, 2, policy=UniformDelay(0.1, 3.0, seed=11)
        )
        assert result.round_latency() == 2
        assert result.committed_value() == "v"

    def test_resilience_boundary_enforced(self):
        with pytest.raises(ValueError):
            validate_resilience(6, 2, requirement="3f+1")
        with pytest.raises(ValueError):
            run_good_case(Brb2Round, 6, 2)

    def test_f_zero_still_works(self):
        result = run_good_case(Brb2Round, 4, 0)
        assert result.committed_value() == "v"


class TestBrb2RoundFaults:
    def test_crashed_broadcaster_no_commit_is_allowed(self):
        # BRB termination is conditional: with a silent broadcaster nobody
        # commits, and that is a correct outcome.
        result = run_broadcast(
            n=4,
            f=1,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=FixedDelay(1.0),
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
        )
        assert result.commits == {}

    def test_crashed_followers_do_not_block(self):
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=FixedDelay(1.0),
            byzantine=frozenset({5, 6}),
            behavior_factory=CrashBehavior,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.round_latency() == 2

    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
    def test_equivocating_broadcaster_cannot_split(self, n, f):
        half = frozenset(range(1, (n + 1) // 2))
        rest = frozenset(range((n + 1) // 2, n))
        behavior = equivocating_broadcaster(
            make_broadcaster=Brb2Round.broadcaster_factory(broadcaster=0),
            groups={"zero": half, "one": rest},
        )
        result = run_broadcast(
            n=n,
            f=f,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="x"),
            delay_policy=FixedDelay(1.0),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
        )
        # Agreement must hold; commits may or may not happen (BRB).
        assert result.agreement_holds()

    def test_termination_amplification(self):
        # If one honest party commits (via the forwarded quorum), all do —
        # even parties that missed the original votes.  We stage this by
        # delaying all votes to party 3 indefinitely except the forwarded
        # quorum from a committed party.
        from repro.sim.delays import FunctionDelay
        from repro.types import INF

        def delays(sender, recipient, payload, t):
            if recipient == 3 and isinstance(payload, tuple):
                if payload[0] == "vote":
                    return INF
                if payload[0] == "propose":
                    return INF
            return 1.0

        result = run_broadcast(
            n=4,
            f=1,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=FunctionDelay(delays),
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"


class TestBrachaBaseline:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
    def test_good_case_commits(self, n, f):
        result = run_good_case(BrachaBrb, n, f)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2)])
    def test_good_case_latency_is_3_rounds(self, n, f):
        # One round worse than the authenticated optimum: the gap the
        # paper highlights for the unauthenticated setting (Section 7).
        result = run_good_case(BrachaBrb, n, f)
        assert result.round_latency() == 3

    def test_equivocation_cannot_split(self):
        behavior = equivocating_broadcaster(
            make_broadcaster=BrachaBrb.broadcaster_factory(broadcaster=0),
            groups={
                "zero": frozenset({1, 2, 3}),
                "one": frozenset({4, 5, 6}),
            },
        )
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=BrachaBrb.factory(broadcaster=0, input_value="x"),
            delay_policy=FixedDelay(1.0),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
        )
        assert result.agreement_holds()

    def test_crashed_followers_do_not_block(self):
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=BrachaBrb.factory(broadcaster=0, input_value="v"),
            delay_policy=FixedDelay(1.0),
            byzantine=frozenset({5, 6}),
            behavior_factory=CrashBehavior,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
