"""Tests for the synchronous BB protocols (Figures 5, 6, 9, 10 + baselines).

The latency assertions check the *exact* Table 1 bounds: good-case
latency is measured from the broadcaster's start (Definition 6) under the
worst-case-within-model delay assignment (every honest message takes
exactly ``delta``).
"""
import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.net.synchrony import SynchronyModel
from repro.protocols.sync.bb_2delta import Bb2Delta
from repro.protocols.sync.bb_delta_15delta import BbDelta15Delta
from repro.protocols.sync.bb_delta_2delta import BbDelta2Delta
from repro.protocols.sync.bb_delta_delta_n3 import BbDeltaDeltaN3
from repro.protocols.sync.bb_delta_delta_sync import BbDeltaDeltaSync
from repro.sim.runner import run_broadcast
from repro.types import BOTTOM

BIG_DELTA = 1.0


def run_sync(
    cls,
    n,
    f,
    *,
    delta,
    skew=0.0,
    skew_pattern="staggered",
    byzantine=frozenset(),
    behavior_factory=None,
    value="v",
    until=None,
    **protocol_kwargs,
):
    model = SynchronyModel(delta=delta, big_delta=BIG_DELTA, skew=skew)
    result = run_broadcast(
        n=n,
        f=f,
        party_factory=cls.factory(
            broadcaster=0,
            input_value=value,
            big_delta=BIG_DELTA,
            **protocol_kwargs,
        ),
        delay_policy=model.worst_case_policy(),
        byzantine=byzantine,
        behavior_factory=behavior_factory,
        start_offsets=model.offsets(n, pattern=skew_pattern),
        until=until,
    )
    return result


class TestBb2Delta:
    @pytest.mark.parametrize("delta", [0.1, 0.25, 0.5, 1.0])
    def test_good_case_latency_is_2_delta(self, delta):
        result = run_sync(Bb2Delta, 7, 2, delta=delta)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(2 * delta)

    def test_good_case_latency_with_skew(self):
        # Unsynchronized start (skew <= delta) must not hurt the bound.
        result = run_sync(Bb2Delta, 7, 2, delta=0.5, skew=0.5)
        assert result.latency_from(0.0) <= 2 * 0.5 + 0.5 + 1e-9
        assert result.committed_value() == "v"

    def test_resilience_f_less_n_third(self):
        with pytest.raises(ValueError):
            run_sync(Bb2Delta, 6, 2, delta=0.5)

    def test_crashed_broadcaster_everyone_commits_default(self):
        result = run_sync(
            Bb2Delta, 7, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=CrashBehavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    def test_equivocating_broadcaster_agreement(self):
        behavior = equivocating_broadcaster(
            make_broadcaster=Bb2Delta.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset({1, 2, 3}),
                "one": frozenset({4, 5, 6}),
            },
        )
        result = run_sync(
            Bb2Delta, 7, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=behavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()


class TestBbDeltaDeltaN3:
    @pytest.mark.parametrize("delta", [0.1, 0.25, 0.5, 1.0])
    def test_good_case_latency_is_delta_plus_delta(self, delta):
        # f = n/3 exactly: the regime where this protocol is optimal.
        result = run_sync(BbDeltaDeltaN3, 6, 2, delta=delta)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(BIG_DELTA + delta)

    def test_good_case_with_skew(self):
        result = run_sync(BbDeltaDeltaN3, 6, 2, delta=0.25, skew=0.25)
        assert result.committed_value() == "v"
        # Bound from the broadcaster's start: Delta + delta (validity is
        # per-party; the skew shifts non-broadcaster clocks only).
        assert result.latency_from(0.0) <= BIG_DELTA + 2 * 0.25 + 1e-9

    def test_crashed_broadcaster_agreement(self):
        result = run_sync(
            BbDeltaDeltaN3, 6, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=CrashBehavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    @pytest.mark.parametrize("split", [(1, 5), (2, 4), (3, 3)])
    def test_equivocating_broadcaster_agreement(self, split):
        left, right = split
        behavior = equivocating_broadcaster(
            make_broadcaster=BbDeltaDeltaN3.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + left)),
                "one": frozenset(range(1 + left, 6)),
            },
        )
        result = run_sync(
            BbDeltaDeltaN3, 6, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=behavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()


class TestBbDeltaDeltaSync:
    @pytest.mark.parametrize("delta", [0.1, 0.25, 0.5, 1.0])
    def test_good_case_latency_is_delta_plus_delta(self, delta):
        # n/3 < f < n/2 with synchronized start.
        result = run_sync(
            BbDeltaDeltaSync, 5, 2, delta=delta, skew=0.0
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(BIG_DELTA + delta)

    def test_resilience_minority(self):
        with pytest.raises(ValueError):
            run_sync(BbDeltaDeltaSync, 4, 2, delta=0.5)

    def test_crashed_broadcaster(self):
        result = run_sync(
            BbDeltaDeltaSync, 5, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=CrashBehavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    @pytest.mark.parametrize("split", [(1, 3), (2, 2)])
    def test_equivocating_broadcaster_agreement(self, split):
        left, right = split
        behavior = equivocating_broadcaster(
            make_broadcaster=BbDeltaDeltaSync.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + left)),
                "one": frozenset(range(1 + left, 5)),
            },
        )
        result = run_sync(
            BbDeltaDeltaSync, 5, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=behavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()


class TestBbDelta15Delta:
    @pytest.mark.parametrize("delta", [0.125, 0.25, 0.5, 1.0])
    def test_good_case_latency_is_delta_plus_1_5_delta(self, delta):
        # delta on the default 8-point grid: the exact optimum shows up.
        result = run_sync(
            BbDelta15Delta, 5, 2, delta=delta, skew=0.0
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(
            BIG_DELTA + 1.5 * delta
        )

    def test_latency_with_unsynchronized_start(self):
        # The headline result: Delta + 1.5*delta under skew <= delta.
        delta = 0.25
        result = run_sync(
            BbDelta15Delta, 5, 2, delta=delta, skew=delta,
            skew_pattern="max",
        )
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) <= BIG_DELTA + 1.5 * delta + 1e-9

    def test_off_grid_delta_costs_half_grid_step(self):
        # delta strictly between grid points: commit uses the next grid
        # point d > delta, costing (d - delta)/2 extra.
        delta = 0.3  # grid step 0.125 -> next grid point 0.375
        result = run_sync(BbDelta15Delta, 5, 2, delta=delta, skew=0.0)
        # Non-broadcaster parties (t_prop = delta) may already use the
        # grid point d = 0.25 (the commit rule allows
        # t_votes - t_prop <= Delta + 1.5*d); votes for d = 0.25 arrive at
        # 2*delta + Delta - 0.5*d = 1.475, past the equivocation window
        # t_prop + Delta + 0.5*d = 1.425, so the slowest commit is 1.475.
        assert result.latency_from(0.0) == pytest.approx(1.475)
        # Never better than the theoretical optimum Delta + 1.5*delta ...
        assert result.latency_from(0.0) >= BIG_DELTA + 1.5 * delta - 1e-9
        # ... and within the paper's m-sample guarantee.
        assert result.latency_from(0.0) <= (
            (1 + 1 / (2 * 8)) * BIG_DELTA + 1.5 * delta
        )

    @pytest.mark.parametrize("m", [1, 2, 4, 16])
    def test_grid_size_tradeoff_bound(self, m):
        # (1 + 1/2m) * Delta + 1.5 * delta for the m-sample variant.
        delta = 0.3
        result = run_sync(
            BbDelta15Delta, 5, 2, delta=delta, skew=0.0, grid_samples=m
        )
        bound = (1 + 1 / (2 * m)) * BIG_DELTA + 1.5 * delta
        assert result.latency_from(0.0) <= bound + 1e-9

    def test_crashed_broadcaster(self):
        result = run_sync(
            BbDelta15Delta, 5, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=CrashBehavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    @pytest.mark.parametrize("split", [(1, 3), (2, 2), (3, 1)])
    def test_equivocating_broadcaster_agreement(self, split):
        left, right = split
        behavior = equivocating_broadcaster(
            make_broadcaster=BbDelta15Delta.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset(range(1, 1 + left)),
                "one": frozenset(range(1 + left, 5)),
            },
        )
        result = run_sync(
            BbDelta15Delta, 5, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=behavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()

    def test_equivocation_with_skew_agreement(self):
        behavior = equivocating_broadcaster(
            make_broadcaster=BbDelta15Delta.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset({1, 2}),
                "one": frozenset({3, 4}),
            },
        )
        result = run_sync(
            BbDelta15Delta, 5, 2, delta=0.5, skew=0.25,
            byzantine=frozenset({0}), behavior_factory=behavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()


class TestBbDelta2Delta:
    @pytest.mark.parametrize("delta", [0.1, 0.25, 0.5, 1.0])
    def test_good_case_latency_is_delta_plus_2_delta(self, delta):
        result = run_sync(BbDelta2Delta, 5, 2, delta=delta, skew=0.0)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert result.latency_from(0.0) == pytest.approx(
            BIG_DELTA + 2 * delta
        )

    def test_consistently_slower_than_fig9(self):
        delta = 0.5
        fast = run_sync(BbDelta15Delta, 5, 2, delta=delta, skew=0.0)
        slow = run_sync(BbDelta2Delta, 5, 2, delta=delta, skew=0.0)
        assert fast.latency_from(0.0) < slow.latency_from(0.0)
        assert slow.latency_from(0.0) - fast.latency_from(0.0) == (
            pytest.approx(0.5 * delta)
        )

    def test_equivocating_broadcaster_agreement(self):
        behavior = equivocating_broadcaster(
            make_broadcaster=BbDelta2Delta.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset({1, 2}),
                "one": frozenset({3, 4}),
            },
        )
        result = run_sync(
            BbDelta2Delta, 5, 2, delta=0.5,
            byzantine=frozenset({0}), behavior_factory=behavior,
            until=100.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()
