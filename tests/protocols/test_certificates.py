"""Unit tests for the Figure 2 certificate check."""
import pytest

from repro.crypto.signatures import KeyRegistry
from repro.protocols.psync.certificates import (
    Certificate,
    CertificateChecker,
    make_bottom_entry,
    make_leader_pair,
    make_value_entry,
)
from repro.types import BOTTOM

N, F = 9, 2  # n = 5f - 1 -> quorum 7, t1 = 2f-1 = 3, t2 = 2f = 4
LEADER = 0


@pytest.fixture()
def setup():
    registry = KeyRegistry(N)
    signers = {i: registry.signer_for(i) for i in range(N)}
    checker = CertificateChecker(
        n=N, f=F, registry=registry, leader_of=lambda view: LEADER
    )
    return registry, signers, checker


def value_entries(signers, value, view, contributors):
    pair = make_leader_pair(signers[LEADER], value, view)
    return [make_value_entry(signers[j], pair) for j in contributors]


def bottom_entries(signers, view, contributors):
    return [make_bottom_entry(signers[j], view) for j in contributors]


class TestThresholds:
    def test_paper_thresholds_at_5f_minus_1(self, setup):
        _, _, checker = setup
        assert checker.quorum == N - F == 4 * F - 1
        assert checker.t1 == 2 * F - 1
        assert checker.t2 == 2 * F


class TestValidity:
    def test_genesis_is_valid_and_locks_any(self, setup):
        _, _, checker = setup
        status = checker.evaluate(Certificate.genesis())
        assert status.valid
        assert status.locks_any
        assert status.locks("anything", lambda v: True)
        assert not status.locks("anything", lambda v: False)
        assert not status.locks(BOTTOM, lambda v: True)

    def test_quorum_of_bottoms_is_valid_but_locks_nothing(self, setup):
        _, signers, checker = setup
        entries = bottom_entries(signers, 1, range(7))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert status.valid
        assert status.locked_value is None
        assert not status.locks_any

    def test_too_few_entries_invalid(self, setup):
        _, signers, checker = setup
        entries = bottom_entries(signers, 1, range(6))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert not status.valid

    def test_duplicate_contributors_invalid(self, setup):
        _, signers, checker = setup
        entries = bottom_entries(signers, 1, range(6))
        entries.append(make_bottom_entry(signers[5], 1))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert not status.valid

    def test_wrong_view_entries_invalid(self, setup):
        _, signers, checker = setup
        entries = bottom_entries(signers, 2, range(7))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert not status.valid

    def test_value_entry_not_signed_by_leader_invalid(self, setup):
        _, signers, checker = setup
        pair = make_leader_pair(signers[3], "v", 1)  # party 3 is not leader
        entries = [make_value_entry(signers[j], pair) for j in range(7)]
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert not status.valid

    def test_externally_invalid_value_rejected(self, setup):
        registry, signers, _ = setup
        checker = CertificateChecker(
            n=N,
            f=F,
            registry=registry,
            leader_of=lambda view: LEADER,
            external_validity=lambda v: v != "bad",
        )
        entries = value_entries(signers, "bad", 1, range(7))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert not status.valid


class TestLocking:
    def test_condition_1_locks_with_t1_unanimous(self, setup):
        _, signers, checker = setup
        entries = value_entries(signers, "v", 1, range(3))  # t1 = 3
        entries += bottom_entries(signers, 1, range(3, 7))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert status.valid
        assert status.locked_value == "v"

    def test_condition_1_blocked_by_conflicting_entry(self, setup):
        _, signers, checker = setup
        entries = value_entries(signers, "v", 1, range(3))
        entries += value_entries(signers, "w", 1, [3])
        entries += bottom_entries(signers, 1, range(4, 7))
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert status.valid
        # 3 entries for v but a conflicting w entry, and only 3 < t2=4
        # non-leader entries for v: locks nothing.
        assert status.locked_value is None

    def test_condition_2_locks_despite_conflict(self, setup):
        _, signers, checker = setup
        # 4 non-leader entries for v (t2 = 4) beat a conflicting entry.
        entries = value_entries(signers, "v", 1, [1, 2, 3, 4])
        entries += value_entries(signers, "w", 1, [5])
        entries += bottom_entries(signers, 1, [6, 7])
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert status.valid
        assert status.locked_value == "v"

    def test_condition_2_leader_countersignature_does_not_count(self, setup):
        _, signers, checker = setup
        # 3 non-leader + the leader's own countersignature: condition 2
        # needs 4 *non-leader* entries, so this locks nothing (and
        # condition 1 fails because of the conflicting entry).
        entries = value_entries(signers, "v", 1, [LEADER, 1, 2, 3])
        entries += value_entries(signers, "w", 1, [4])
        entries += bottom_entries(signers, 1, [5, 6])
        status = checker.evaluate(Certificate(1, tuple(entries)))
        assert status.valid
        assert status.locked_value is None

    def test_lock_uniqueness(self, setup):
        # Two values cannot both lock: 2 * t2 > quorum.
        _, signers, checker = setup
        assert 2 * checker.t2 > checker.quorum

    def test_bottom_value_entries_rejected(self, setup):
        _, signers, checker = setup
        pair = make_leader_pair(signers[LEADER], BOTTOM, 1)
        entry = make_value_entry(signers[1], pair)
        assert checker.parse_entry(entry, 1) is None

    def test_parse_entry_roundtrip(self, setup):
        _, signers, checker = setup
        pair = make_leader_pair(signers[LEADER], "v", 1)
        entry = make_value_entry(signers[2], pair)
        parsed = checker.parse_entry(entry, 1)
        assert parsed is not None
        assert parsed.contributor == 2
        assert parsed.value == "v"
        assert not parsed.is_bottom
        bottom = make_bottom_entry(signers[2], 1)
        parsed_bottom = checker.parse_entry(bottom, 1)
        assert parsed_bottom is not None
        assert parsed_bottom.is_bottom

    def test_ranking_by_view(self, setup):
        _, signers, checker = setup
        low = Certificate(1, tuple(bottom_entries(signers, 1, range(7))))
        high = Certificate(2, ())
        assert checker.ranked_higher(high, low)
        assert not checker.ranked_higher(low, high)
