"""Tests for TrustCast and the dishonest-majority BB (Section 5.5)."""
import math

import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.net.synchrony import SynchronyModel
from repro.protocols.sync.dishonest_majority import (
    WanStyleBb,
    trustcast_rounds,
)
from repro.sim.runner import run_broadcast
from repro.types import BOTTOM

BIG_DELTA = 1.0


def run_wan(n, f, *, delta=None, byzantine=frozenset(),
            behavior_factory=None, value="v", until=None):
    model = SynchronyModel(
        delta=delta if delta is not None else BIG_DELTA,
        big_delta=BIG_DELTA,
        skew=0.0,
    )
    return run_broadcast(
        n=n,
        f=f,
        party_factory=WanStyleBb.factory(
            broadcaster=0, input_value=value, big_delta=BIG_DELTA
        ),
        delay_policy=model.worst_case_policy(),
        byzantine=byzantine,
        behavior_factory=behavior_factory,
        until=until,
    )


class TestTrustCastRounds:
    @pytest.mark.parametrize(
        "n,f,expected",
        [(4, 2, 4), (6, 3, 4), (8, 6, 8), (10, 8, 10), (9, 6, 6)],
    )
    def test_rounds_formula(self, n, f, expected):
        assert trustcast_rounds(n, f) == expected
        assert trustcast_rounds(n, f) == math.ceil(2 * n / (n - f))


class TestGoodCase:
    @pytest.mark.parametrize("n,f", [(4, 2), (6, 3), (6, 4), (8, 6)])
    def test_commits_broadcaster_value(self, n, f):
        result = run_wan(n, f)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    @pytest.mark.parametrize("n,f", [(4, 2), (6, 4), (8, 6)])
    def test_good_case_latency_shape(self, n, f):
        # Fast path: 1 direct proposal round + one TrustCast of votes,
        # i.e. (1 + ceil(2n/(n-f))) * Delta — the paper's ~2n/(n-f)*Delta.
        result = run_wan(n, f)
        expected = (1 + trustcast_rounds(n, f)) * BIG_DELTA
        assert result.latency_from(0.0) == pytest.approx(expected)

    def test_latency_grows_with_f_over_n(self):
        lat = {}
        for n, f in [(4, 2), (6, 4), (8, 6), (10, 8)]:
            lat[(n, f)] = run_wan(n, f).latency_from(0.0)
        values = [lat[(4, 2)], lat[(6, 4)], lat[(8, 6)], lat[(10, 8)]]
        assert values == sorted(values)
        # n/(n-f) doubles from (4,2) to (8,6): latency roughly doubles.
        assert values[2] / values[0] == pytest.approx(9 / 5)

    def test_byzantine_followers_cannot_block_fast_path(self):
        # Crashing followers: honest votes still cover h = n - f parties.
        result = run_wan(
            6, 3, byzantine=frozenset({3, 4, 5}),
            behavior_factory=CrashBehavior,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        expected = (1 + trustcast_rounds(6, 3)) * BIG_DELTA
        assert result.latency_from(0.0) == pytest.approx(expected)


class TestFaultyBroadcaster:
    def test_crashed_broadcaster_all_commit_bottom(self):
        result = run_wan(
            4, 2, byzantine=frozenset({0}), behavior_factory=CrashBehavior,
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    def test_equivocating_broadcaster_agreement(self):
        # The split reaches both groups; honest votes cross-deliver the
        # conflicting broadcaster signatures, so nobody fast-commits and
        # everybody lands on BOTTOM.
        behavior = equivocating_broadcaster(
            make_broadcaster=WanStyleBb.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset({1}),
                "one": frozenset({2, 3}),
            },
        )
        result = run_wan(
            4, 2, byzantine=frozenset({0}), behavior_factory=behavior,
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()
        assert result.committed_value() is BOTTOM

    def test_cert_adoption_carries_nonvoters(self):
        # Broadcaster proposes only to a quorum; the certificate phase
        # must carry the starved parties to the same value.
        from repro.adversary.behaviors import (
            FilteredHonestBehavior,
            silent_toward,
        )

        n, f = 4, 2
        starved = frozenset({3})

        def behavior(world, pid):
            return FilteredHonestBehavior(
                world,
                pid,
                party_factory=lambda w, p: WanStyleBb(
                    w, p, broadcaster=0, input_value="v", big_delta=BIG_DELTA
                ),
                send_filter=silent_toward(starved),
            )

        result = run_wan(
            n, f, byzantine=frozenset({0}), behavior_factory=behavior,
            until=500.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()
