"""Tests for the BA primitive and the Dolev-Strong BB baseline."""
import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.net.synchrony import SynchronyModel
from repro.protocols.ba import DolevStrongBa
from repro.protocols.dolev_strong import DolevStrongBb
from repro.sim.process import Party
from repro.sim.runner import World, run_broadcast
from repro.types import BOTTOM

BIG_DELTA = 1.0


class BaHarnessParty(Party):
    """Minimal host that runs one BA instance with a fixed input."""

    def __init__(self, world, pid, *, input_value, start_at=0.0):
        super().__init__(world, pid)
        self.input_value = input_value
        self.start_at = start_at
        self.decision = None
        self._ba = DolevStrongBa(
            self,
            tag=("test-ba", 0),
            big_delta=BIG_DELTA,
            on_decide=self._decided,
        )

    def on_start(self):
        self.at_local_time(self.start_at, lambda: self._ba.start(self.input_value))

    def on_message(self, sender, payload):
        self._ba.handle(sender, payload)

    def _decided(self, value):
        self.decision = value


def run_ba(n, f, inputs, *, delta=1.0, skew=0.0, byzantine=frozenset(),
           behavior_factory=None):
    model = SynchronyModel(delta=delta, big_delta=BIG_DELTA, skew=skew)
    world = World(
        n=n,
        f=f,
        delay_policy=model.worst_case_policy(),
        byzantine=byzantine,
        start_offsets=model.offsets(n, pattern="staggered"),
    )
    world.populate(
        lambda w, pid: BaHarnessParty(w, pid, input_value=inputs[pid]),
        behavior_factory,
    )
    world.run(until=1000.0)
    return {
        pid: agent.decision
        for pid, agent in world.agents.items()
        if pid not in byzantine
    }


class TestDolevStrongBa:
    def test_validity_all_same_input(self):
        decisions = run_ba(5, 2, ["v"] * 5)
        assert all(d == "v" for d in decisions.values())

    def test_agreement_with_mixed_inputs(self):
        decisions = run_ba(5, 2, ["a", "a", "b", "b", "a"])
        assert len(set(decisions.values())) == 1
        # 3 of 5 inputs are "a": majority resolution must pick it.
        assert set(decisions.values()) == {"a"}

    def test_no_majority_yields_default(self):
        decisions = run_ba(4, 1, ["a", "a", "b", "b"])
        assert len(set(decisions.values())) == 1

    def test_validity_under_max_delay_and_skew(self):
        # The stress case: delta = Delta and skew = Delta (lock-step edge).
        decisions = run_ba(5, 2, ["v"] * 5, delta=1.0, skew=1.0)
        assert all(d == "v" for d in decisions.values())

    def test_validity_with_crashed_parties(self):
        decisions = run_ba(
            5, 2, ["v"] * 5,
            byzantine=frozenset({3, 4}), behavior_factory=CrashBehavior,
        )
        assert all(d == "v" for d in decisions.values())

    def test_agreement_with_crashed_parties_mixed(self):
        decisions = run_ba(
            5, 2, ["a", "a", "b", "x", "x"],
            byzantine=frozenset({3, 4}), behavior_factory=CrashBehavior,
        )
        assert len(set(decisions.values())) == 1

    def test_f_zero(self):
        decisions = run_ba(3, 0, ["v"] * 3)
        assert all(d == "v" for d in decisions.values())


class TestDolevStrongBb:
    def run_ds(self, n, f, *, delta=1.0, byzantine=frozenset(),
               behavior_factory=None, value="v"):
        model = SynchronyModel(delta=delta, big_delta=BIG_DELTA)
        return run_broadcast(
            n=n,
            f=f,
            party_factory=DolevStrongBb.factory(
                broadcaster=0, input_value=value, big_delta=BIG_DELTA
            ),
            delay_policy=model.worst_case_policy(),
            byzantine=byzantine,
            behavior_factory=behavior_factory,
            until=1000.0,
        )

    @pytest.mark.parametrize("n,f", [(4, 1), (4, 2), (4, 3), (7, 5)])
    def test_tolerates_any_f_below_n(self, n, f):
        result = self.run_ds(n, f)
        assert result.all_honest_committed()
        assert result.committed_value() == "v"

    def test_latency_is_f_plus_1_rounds_of_2_delta(self):
        # The worst-case baseline: (f+1) * 2Delta even in the good case —
        # the motivating gap for good-case-latency research.
        for f in (1, 2, 3):
            result = self.run_ds(7, f, delta=0.01)
            assert result.latency_from(0.0) == pytest.approx(
                (f + 1) * 2 * BIG_DELTA
            )

    def test_crashed_broadcaster_commits_default(self):
        result = self.run_ds(
            4, 1, byzantine=frozenset({0}), behavior_factory=CrashBehavior
        )
        assert result.all_honest_committed()
        assert result.committed_value() is BOTTOM

    def test_equivocating_broadcaster_agreement(self):
        behavior = equivocating_broadcaster(
            make_broadcaster=DolevStrongBb.broadcaster_factory(
                broadcaster=0, big_delta=BIG_DELTA
            ),
            groups={
                "zero": frozenset({1}),
                "one": frozenset({2, 3}),
            },
        )
        result = self.run_ds(
            4, 1, byzantine=frozenset({0}), behavior_factory=behavior
        )
        assert result.all_honest_committed()
        # Relaying exposes the equivocation: everyone extracts both values
        # and outputs the default.
        assert result.agreement_holds()
        assert result.committed_value() is BOTTOM
