"""Deeper view-change and failure-injection tests for (5f-1)-psync-VBB."""
import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.protocols.psync.vbb_5f1 import PsyncVbb5f1
from repro.sim.delays import FixedDelay, FunctionDelay
from repro.sim.runner import World, run_broadcast
from repro.types import INF

DELTA = 1.0


def factory(**kwargs):
    kwargs.setdefault("big_delta", DELTA)
    kwargs.setdefault("input_value", "v")
    return PsyncVbb5f1.factory(broadcaster=0, **kwargs)


class TestConsecutiveLeaderFailures:
    def test_two_crashed_leaders_in_a_row(self):
        # Leaders of views 1 and 2 (parties 0 and 1) are both crashed:
        # commit happens in view 3.
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=factory(fallback_value="fb"),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0, 1}),
            behavior_factory=CrashBehavior,
            until=1000.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "fb"
        # Two view changes of 4*Delta each had to elapse first.
        assert min(result.commit_global_times.values()) > 8 * DELTA

    def test_view_progression_is_recorded(self):
        world = World(
            n=9,
            f=2,
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0, 1}),
        )
        world.populate(factory(fallback_value="fb"), CrashBehavior)
        world.run(until=1000.0)
        views = {p.current_view for p in world.honest_parties()}
        assert max(views) >= 3


class TestMessageLoss:
    def test_slow_links_to_minority_do_not_block(self):
        # f parties are behind arbitrarily slow (but finite) links; the
        # quorum of the rest commits in 2 rounds and carries them later.
        slow = {7, 8}

        def delays(sender, recipient, payload, t):
            if recipient in slow or sender in slow:
                return 30.0
            return 0.1

        result = run_broadcast(
            n=9,
            f=2,
            party_factory=factory(),
            delay_policy=FunctionDelay(delays),
            until=200.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        fast_commits = [
            t for p, t in result.commit_global_times.items() if p not in slow
        ]
        assert max(fast_commits) <= 1.0  # the quorum is unaffected

    def test_proposal_lost_to_everyone_triggers_view_change(self):
        # The leader's proposals all vanish: equivalent to a crash.
        def delays(sender, recipient, payload, t):
            if sender == 0 and t < 2.0:
                return INF
            return 0.1

        result = run_broadcast(
            n=9,
            f=2,
            party_factory=factory(fallback_value="fb"),
            delay_policy=FunctionDelay(delays),
            until=1000.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()


class TestMaxViewCap:
    def test_max_view_stops_view_churn(self):
        # With every message dropped forever, parties stop at max_view
        # instead of spinning; nobody commits (correct: psync termination
        # is conditional on GST).
        # Delays far beyond the horizon: no message ever arrives.
        world = World(n=9, f=2, delay_policy=FixedDelay(10_000.0))
        world.populate(factory(max_view=5))
        world.run(until=500.0)
        for party in world.honest_parties():
            assert party.current_view <= 5
            assert not party.has_committed


class TestPendingProposalBuffering:
    def test_fast_new_leader_proposal_is_buffered(self):
        # Party 1 (leader of view 2) may send its proposal while some
        # parties are still finishing view 1; they must buffer and vote
        # after entering view 2 rather than dropping it.
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=factory(fallback_value="fb"),
            delay_policy=FixedDelay(0.4),  # slow enough to interleave
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
            until=1000.0,
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()


class TestExternalValidityUnderFaults:
    def test_fallback_must_be_externally_valid(self):
        # The view-change fallback value is subject to F as well.
        result = run_broadcast(
            n=9,
            f=2,
            party_factory=factory(
                fallback_value="good",
                external_validity=lambda v: v in ("v", "good"),
            ),
            delay_policy=FixedDelay(0.1),
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
            until=1000.0,
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "good"
