"""Adversarial tests for the synchronous protocols beyond equivocation.

The ranked-vote protocols (Figures 6 and 9) let Byzantine parties *lie
about the receipt time d* in their votes — the attack surface their
commit rules are designed around.  These tests script double voters and
d-forgers and check the safety argument (Lemmas 1 and 4) holds in code.
"""
import pytest

from repro.adversary.behaviors import ScriptStep, ScriptedBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.net.synchrony import SynchronyModel
from repro.protocols.sync.bb_delta_15delta import (
    VOTE as VOTE15,
    BbDelta15Delta,
)
from repro.protocols.sync.bb_delta_delta_sync import (
    VOTE as VOTE6,
    BbDeltaDeltaSync,
)
from repro.sim.delays import PerLinkDelay
from repro.sim.runner import World

BIG_DELTA = 1.0
DELTA = 0.25


def split_broadcaster(cls, groups):
    return equivocating_broadcaster(
        make_broadcaster=cls.broadcaster_factory(
            broadcaster=0, big_delta=BIG_DELTA
        ),
        groups=groups,
    )


class TestFig6DoubleVoting:
    """n = 5, f = 2: Byzantine broadcaster + one double-voting follower."""

    def _run(self, *, fake_d):
        # Broadcaster 0 equivocates 0 -> {1, 2}, 1 -> {3}; party 4 double
        # votes for BOTH values with a forged receipt time ``fake_d``.
        behavior_split = split_broadcaster(
            BbDeltaDeltaSync,
            {0: frozenset({1, 2}), 1: frozenset({3})},
        )

        def double_voter(world, pid):
            def script(behavior):
                # The double voter needs broadcaster-signed proposals for
                # both values; the split-brain signs them at t=0, and the
                # votes arrive later, so the signatures verify.
                from repro.crypto.messages import digest
                from repro.crypto.signatures import Signature, SignedPayload

                def proposal(value):
                    body = ("propose", value)
                    return SignedPayload(body, Signature(0, digest(body)))

                steps = []
                for value in (0, 1):
                    vote = behavior.signer.sign(
                        (VOTE6, fake_d, proposal(value))
                    )
                    for recipient in (1, 2, 3):
                        steps.append(
                            ScriptStep(
                                time=0.3, recipient=recipient, payload=vote
                            )
                        )
                return steps

            return ScriptedBehavior(world, pid, script_builder=script)

        def behaviors(world, pid):
            if pid == 0:
                return behavior_split(world, pid)
            return double_voter(world, pid)

        model = SynchronyModel(delta=DELTA, big_delta=BIG_DELTA, skew=0.0)
        world = World(
            n=5,
            f=2,
            delay_policy=model.worst_case_policy(),
            byzantine=frozenset({0, 4}),
        )
        world.populate(
            BbDeltaDeltaSync.factory(
                broadcaster=0, input_value=0, big_delta=BIG_DELTA
            ),
            behaviors,
        )
        world.run(until=100.0)
        return world

    @pytest.mark.parametrize("fake_d", [0.0, 0.1, 0.25])
    def test_agreement_despite_forged_ranks(self, fake_d):
        world = self._run(fake_d=fake_d)
        commits = {
            p.committed_value
            for p in world.honest_parties()
            if p.has_committed
        }
        assert len(commits) <= 1
        assert all(p.has_committed for p in world.honest_parties())

    def test_no_early_commit_with_visible_equivocation(self):
        # The double voter's conflicting votes carry both proposals, so
        # every honest party detects equivocation within its window and
        # defers to the BA.
        world = self._run(fake_d=0.0)
        for party in world.honest_parties():
            assert party.equivocation_detected_at is not None


class TestFig9DoubleVoting:
    def _run(self):
        behavior_split = split_broadcaster(
            BbDelta15Delta,
            {0: frozenset({1, 2}), 1: frozenset({3})},
        )

        def double_voter(world, pid):
            def script(behavior):
                from repro.crypto.messages import digest
                from repro.crypto.signatures import Signature, SignedPayload

                def proposal(value):
                    body = ("propose", value)
                    return SignedPayload(body, Signature(0, digest(body)))

                steps = []
                for value in (0, 1):
                    for d in (0.0, DELTA):
                        vote = behavior.signer.sign(
                            (VOTE15, d, proposal(value))
                        )
                        for recipient in (1, 2, 3):
                            steps.append(
                                ScriptStep(
                                    time=0.3,
                                    recipient=recipient,
                                    payload=vote,
                                )
                            )
                return steps

            return ScriptedBehavior(world, pid, script_builder=script)

        def behaviors(world, pid):
            if pid == 0:
                return behavior_split(world, pid)
            return double_voter(world, pid)

        model = SynchronyModel(delta=DELTA, big_delta=BIG_DELTA, skew=DELTA)
        world = World(
            n=5,
            f=2,
            delay_policy=model.worst_case_policy(),
            byzantine=frozenset({0, 4}),
            start_offsets=model.offsets(5),
        )
        world.populate(
            BbDelta15Delta.factory(
                broadcaster=0, input_value=0, big_delta=BIG_DELTA
            ),
            behaviors,
        )
        world.run(until=100.0)
        return world

    def test_agreement_despite_rank_forgery(self):
        world = self._run()
        commits = {
            p.committed_value
            for p in world.honest_parties()
            if p.has_committed
        }
        assert len(commits) <= 1
        assert all(p.has_committed for p in world.honest_parties())

    def test_locks_agree_before_ba(self):
        # Lemma 1 part (3): all honest parties enter the BA with the same
        # lock whenever someone committed early; when nobody did, locks
        # may differ but the BA still aligns them (checked above).
        world = self._run()
        early = [
            p for p in world.honest_parties()
            if p.has_committed and p.commit_local_time is not None
            and p.commit_local_time < p.ba_time
        ]
        if early:
            committed = early[0].committed_value
            for party in world.honest_parties():
                assert party.lock == committed
