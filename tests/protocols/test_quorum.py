"""Tests for the unified quorum-accounting subsystem.

Covers the tracker's threshold boundaries, duplicate-signer rejection,
equivocation detection, lazy bucket materialization, the world-shared
quorum-payload memo — and the refactor's headline invariant: same-seed
BRB / VBB outcomes are identical in every instrumentation preset (the
``perf`` preset additionally runs the event arena, which must change
allocation only, never outcomes).
"""
from __future__ import annotations

import pytest

from repro.protocols.brb_2round import Brb2Round
from repro.protocols.psync.vbb_5f1 import PsyncVbb5f1
from repro.protocols.quorum import (
    QuorumTracker,
    commit_quorum,
    honest_majority,
    honest_witness,
)
from repro.sim.delays import UniformDelay
from repro.sim.runner import run_broadcast


class TestThresholds:
    def test_threshold_constants(self):
        assert commit_quorum(10, 3) == 7
        assert honest_witness(10, 3) == 4
        assert honest_majority(10, 3) == 7

    def test_tally_crosses_threshold_exactly_once(self):
        n, f = 7, 2
        tracker = QuorumTracker()
        quorum = commit_quorum(n, f)
        counts = [tracker.add("v", signer) for signer in range(n)]
        assert counts == [1, 2, 3, 4, 5, 6, 7]
        assert counts.count(quorum) == 1  # the crossing fires once

    def test_below_boundary_never_reaches(self):
        n, f = 7, 2
        tracker = QuorumTracker()
        for signer in range(n - f - 1):  # one short of the quorum
            tracker.add("v", signer)
        assert tracker.count("v") == n - f - 1
        assert all(
            count < n - f
            for count in [tracker.count(v) for v in tracker.values()]
        )
        assert tracker.add("v", n - f - 1) == n - f  # boundary vote crosses

    def test_count_and_seen(self):
        tracker = QuorumTracker()
        tracker.add("v", 3)
        assert tracker.count("v") == 1
        assert tracker.count("w") == 0
        assert tracker.seen("v", 3)
        assert not tracker.seen("v", 2)
        assert not tracker.seen("w", 3)


class TestDuplicateAndEquivocation:
    def test_duplicate_signer_rejected(self):
        tracker = QuorumTracker()
        assert tracker.add("v", 1, "first") == 1
        assert tracker.add("v", 1, "again") == 0
        assert tracker.count("v") == 1
        assert tracker.entries("v") == ["first"]  # first payload wins

    def test_duplicate_is_not_equivocation(self):
        tracker = QuorumTracker(detect_equivocation=True)
        tracker.add("v", 1)
        tracker.add("v", 1)
        assert not tracker.equivocation_detected

    def test_equivocation_detected_and_both_counted(self):
        tracker = QuorumTracker(detect_equivocation=True)
        tracker.add("v", 1)
        tracker.add("w", 1)
        assert tracker.equivocators == {1}
        assert tracker.equivocation_detected
        # Authenticated-protocol semantics: per-value buckets stay
        # independent, the equivocator counts toward both values.
        assert tracker.count("v") == 1
        assert tracker.count("w") == 1

    def test_detection_off_by_default(self):
        tracker = QuorumTracker()
        tracker.add("v", 1)
        tracker.add("w", 1)
        assert tracker.equivocators == set()

    def test_first_vote_only_rejects_second_value(self):
        tracker = QuorumTracker(
            first_vote_only=True, detect_equivocation=True
        )
        assert tracker.add("v", 1) == 1
        assert tracker.add("w", 1) == 0  # phase-king: first message wins
        assert tracker.count("w") == 0
        assert "w" not in tracker.values()
        assert tracker.equivocators == {1}
        assert tracker.vote_of(1) == "v"

    def test_checks_counts_every_add_call(self):
        tracker = QuorumTracker()
        tracker.add("v", 1)
        tracker.add("v", 1)  # duplicates still count as a check
        tracker.add("w", 2)
        assert tracker.checks == 3


class TestLazyMaterialization:
    def test_entries_in_arrival_order_sorted_by_signer_on_demand(self):
        tracker = QuorumTracker()
        tracker.add("v", 5, "e5")
        tracker.add("v", 2, "e2")
        tracker.add("v", 9, "e9")
        assert tracker.entries("v") == ["e5", "e2", "e9"]
        assert tracker.entry_pairs("v") == [(5, "e5"), (2, "e2"), (9, "e9")]
        assert tracker.sorted_entries("v") == ("e2", "e5", "e9")
        assert tracker.signers("v") == [2, 5, 9]

    def test_count_only_mode_keeps_no_buckets(self):
        tracker = QuorumTracker()
        for signer in range(5):
            tracker.add("v", signer)  # payload=None: pure tally
        assert tracker.count("v") == 5
        assert tracker.entries("v") == []
        assert tracker.sorted_entries("v") == ()

    def test_lazy_equals_eager_semantics(self):
        """The lazily-built bucket matches an eagerly-maintained dict."""
        import random

        rng = random.Random(7)
        tracker = QuorumTracker()
        eager: dict[str, dict[int, str]] = {}
        for _ in range(200):
            value = rng.choice("abc")
            signer = rng.randrange(40)
            payload = f"{value}:{signer}"
            tracker.add(value, signer, payload)
            eager.setdefault(value, {}).setdefault(signer, payload)
        for value, bucket in eager.items():
            assert tracker.count(value) == len(bucket)
            assert tracker.signers(value) == sorted(bucket)
            assert tracker.sorted_entries(value) == tuple(
                bucket[s] for s in sorted(bucket)
            )
            assert set(tracker.entries(value)) == set(bucket.values())

    def test_quorum_payload_without_memo_builds_fresh(self):
        tracker = QuorumTracker()
        tracker.add("v", 2, "e2")
        tracker.add("v", 1, "e1")
        built = tracker.quorum_payload("v", lambda q: ("msg", q))
        assert built == ("msg", ("e1", "e2"))
        again = tracker.quorum_payload("v", lambda q: ("msg", q))
        assert again == built
        assert again is not built  # no memo: fresh object per call

    def test_quorum_payload_shared_across_trackers(self):
        """Same (value, signer-set) => one message object world-wide."""
        from repro.crypto.messages import ContentMemo

        memo = ContentMemo(64)
        a = QuorumTracker(shared_memo=memo)
        b = QuorumTracker(shared_memo=memo)
        for tracker in (a, b):
            tracker.add("v", 2, "e2")
            tracker.add("v", 1, "e1")
        built_a = a.quorum_payload("v", lambda q: ("msg", q))
        built_b = b.quorum_payload("v", lambda q: ("msg", q))
        assert built_a is built_b
        # A different supporter set gets its own message.
        b.add("v", 3, "e3")
        assert b.quorum_payload("v", lambda q: ("msg", q)) is not built_a


class TestProtocolIntegration:
    def test_brb_tracker_detects_byzantine_double_vote(self):
        """An equivocating vote pair flags the signer, commit unaffected."""
        from repro.adversary.behaviors import equivocate_votes

        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            byzantine=frozenset({5, 6}),
            behavior_factory=equivocate_votes(broadcaster=0),
        )
        assert result.all_honest_committed()
        assert result.agreement_holds()
        assert result.committed_value() == "v"
        assert result.equivocations_detected > 0

    def test_quorum_checks_surface_in_run_result(self):
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
        )
        assert result.quorum_checks > 0
        assert result.equivocations_detected == 0

    def test_quorum_forward_message_shared_world_wide(self):
        """Parties with equal supporter sets share one forward object.

        In the fixed-delay good case each party's quorum is its own early
        self-vote plus the first arrivals, so only a few distinct signer
        sets exist — the memo must collapse the n multicast payloads to
        one object per distinct set (the digest/intern caches then hit on
        identity downstream).
        """
        from repro.protocols.brb_2round import VOTE_QUORUM
        from repro.sim.delays import FixedDelay
        from repro.sim.runner import World

        world = World(
            n=7, f=2, delay_policy=FixedDelay(1.0), record_envelopes=True,
        )
        world.populate(Brb2Round.factory(broadcaster=0, input_value="v"))
        result = world.run()
        assert result.all_honest_committed()
        forwards = [
            env.payload
            for env in world.network.envelopes
            if isinstance(env.payload, tuple)
            and env.payload
            and env.payload[0] == VOTE_QUORUM
        ]
        assert forwards
        distinct_objects = {id(p): p for p in forwards}
        distinct_signer_sets = {
            tuple(v.signer for v in p[1]) for p in distinct_objects.values()
        }
        # One shared object per distinct supporter set, and real sharing:
        # far fewer objects than the 7 * 6 forward sends.
        assert len(distinct_objects) == len(distinct_signer_sets)
        assert len(distinct_objects) < world.n


OUTCOME_CONFIGS = [
    ("brb", Brb2Round, dict(n=16, f=5), {}),
    ("vbb", PsyncVbb5f1, dict(n=16, f=3), dict(big_delta=1.0)),
]


def _outcome(cls, n, f, kwargs, mode, seed):
    result = run_broadcast(
        n=n,
        f=f,
        party_factory=cls.factory(broadcaster=0, input_value="v", **kwargs),
        delay_policy=UniformDelay(0.0, 1.0, seed=seed),
        instrumentation=mode,
    )
    return (
        dict(sorted(result.commits.items())),
        dict(sorted(result.commit_global_times.items())),
        result.messages_sent,
        result.final_time,
        result.events_processed,
    )


class TestInstrumentationInvariance:
    """Mode changes cost, never semantics — now including the arena."""

    @pytest.mark.parametrize("label,cls,sizes,kwargs", OUTCOME_CONFIGS)
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_same_seed_outcomes_identical_across_presets(
        self, label, cls, sizes, kwargs, seed
    ):
        full = _outcome(cls, sizes["n"], sizes["f"], kwargs, "full", seed)
        rounds = _outcome(cls, sizes["n"], sizes["f"], kwargs, "rounds", seed)
        perf = _outcome(cls, sizes["n"], sizes["f"], kwargs, "perf", seed)
        assert full == rounds == perf

    def test_quorum_checks_identical_across_presets(self):
        results = {
            mode: run_broadcast(
                n=16,
                f=5,
                party_factory=Brb2Round.factory(
                    broadcaster=0, input_value="v"
                ),
                delay_policy=UniformDelay(0.0, 1.0, seed=3),
                instrumentation=mode,
            )
            for mode in ("full", "rounds", "perf")
        }
        checks = {r.quorum_checks for r in results.values()}
        assert len(checks) == 1 and checks.pop() > 0
        # Arena accounting is a perf-only effect.
        assert results["full"].events_recycled == 0
        assert results["rounds"].events_recycled == 0
        assert results["perf"].events_recycled > 0


class TestBatchScalarParity:
    """``add_batch`` must be indistinguishable from a loop of ``add``."""

    @staticmethod
    def _tracker_state(tracker):
        return (
            {
                value: (
                    tuple(tracker.signers(value)),
                    tuple(tracker.entries(value)),
                )
                for value in tracker.values()
            },
            set(tracker.equivocators),
            tracker.checks,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize(
        "first_only,detect",
        [(False, False), (False, True), (True, False), (True, True)],
    )
    def test_randomized_stream_parity(self, seed, first_only, detect):
        import random

        rng = random.Random(seed)
        n, threshold = 12, 7
        # A vote stream with duplicates and cross-value equivocators.
        stream = []
        for _ in range(60):
            signer = rng.randrange(n)
            value = rng.choice(["a", "b"])
            stream.append((value, signer, f"{value}:{signer}"))
        scalar = QuorumTracker(
            first_vote_only=first_only, detect_equivocation=detect
        )
        batch = QuorumTracker(
            first_vote_only=first_only, detect_equivocation=detect
        )
        scalar_crossings = []
        for value, signer, payload in stream:
            if scalar.add(value, signer, payload) == threshold:
                mask = sum(1 << s for s in scalar.signers(value))
                scalar_crossings.append((value, mask))
        # Batch path: the same stream cut at random boundaries, each
        # same-value run absorbed through add_batch (mixed-value cuts
        # are re-split so every batch is single-value, as in the
        # protocols' uniform-run gate).
        batch_crossings = []
        idx = 0
        while idx < len(stream):
            size = rng.randrange(1, 9)
            chunk = stream[idx : idx + size]
            idx += size
            run_start = 0
            for i in range(1, len(chunk) + 1):
                if i == len(chunk) or chunk[i][0] != chunk[run_start][0]:
                    run = chunk[run_start:i]
                    value = run[0][0]
                    _, mask = batch.add_batch(
                        value,
                        [(s, p) for _, s, p in run],
                        threshold=threshold,
                    )
                    if mask is not None:
                        batch_crossings.append((value, mask))
                    run_start = i
        assert self._tracker_state(scalar) == self._tracker_state(batch)
        # The crossing fires exactly once per value in both paths, and
        # the batch's crossing mask equals the mask the scalar tracker
        # held right after its threshold-crossing add.
        assert batch_crossings == scalar_crossings

    def test_equivocation_across_batch_boundary(self):
        # A signer voting "a" in one batch and "b" in the next is
        # flagged exactly like the scalar path flags the second vote.
        scalar = QuorumTracker(detect_equivocation=True)
        batch = QuorumTracker(detect_equivocation=True)
        for value, signer in [("a", 1), ("a", 2), ("b", 1), ("b", 3)]:
            scalar.add(value, signer, None)
        batch.add_batch("a", [(1, None), (2, None)], threshold=99)
        batch.add_batch("b", [(1, None), (3, None)], threshold=99)
        assert set(scalar.equivocators) == set(batch.equivocators) == {1}
        assert scalar.signers("b") == batch.signers("b")
        assert scalar.checks == batch.checks == 4
