"""Unit tests for the TrustCast primitive (deliver-or-distrust).

The guarantee (Wan et al., reproduced in Section 5.5's substrate): after
the lock-step rounds complete, every honest party either delivered a
unique message from the sender or distrusts the sender — and an honest
sender is always delivered and never distrusted.
"""
import pytest

from repro.net.synchrony import SynchronyModel
from repro.protocols.ba import DS_MSG
from repro.protocols.sync.dishonest_majority import TrustCast
from repro.sim.process import Party
from repro.sim.runner import World

BIG_DELTA = 1.0
ROUNDS = 4


class TcHarness(Party):
    """Runs one TrustCast instance with the host as sender or receiver."""

    def __init__(self, world, pid, *, sender, value=None):
        super().__init__(world, pid)
        self.tc = TrustCast(self, tag=("tc", sender), sender=sender,
                            rounds=ROUNDS)
        self.sender_id = sender
        self.value = value

    def on_start(self):
        if self.id == self.sender_id and self.value is not None:
            self.tc.broadcast(self.value)
        for k in range(1, ROUNDS + 1):
            self.at_local_time(k * BIG_DELTA, self.tc.boundary)

    def on_message(self, sender, payload):
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == DS_MSG
            and payload[1] == self.tc.inner.tag
        ):
            self.tc.receive_chain(payload[2])


def run_tc(n, f, *, sender, value, byzantine=frozenset(),
           behavior_factory=None, delta=1.0):
    model = SynchronyModel(delta=delta, big_delta=BIG_DELTA, skew=0.0)
    world = World(
        n=n, f=f, delay_policy=model.worst_case_policy(),
        byzantine=byzantine,
    )
    world.populate(
        lambda w, pid: TcHarness(w, pid, sender=sender, value=value),
        behavior_factory,
    )
    world.run(until=100.0)
    return {
        pid: agent.tc
        for pid, agent in world.agents.items()
        if pid not in byzantine
    }


class TestHonestSender:
    def test_everyone_delivers_and_trusts(self):
        tcs = run_tc(6, 4, sender=0, value="m")
        for tc in tcs.values():
            assert tc.finalized
            assert tc.trusted
            assert tc.delivered == "m"

    def test_delivery_despite_dishonest_majority_silence(self):
        from repro.adversary.behaviors import CrashBehavior

        tcs = run_tc(
            6, 4, sender=0, value="m",
            byzantine=frozenset({2, 3, 4, 5}),
            behavior_factory=CrashBehavior,
        )
        for tc in tcs.values():
            assert tc.trusted
            assert tc.delivered == "m"


class TestByzantineSender:
    def test_silent_sender_is_distrusted(self):
        from repro.adversary.behaviors import CrashBehavior

        tcs = run_tc(
            6, 4, sender=0, value=None,
            byzantine=frozenset({0}),
            behavior_factory=CrashBehavior,
        )
        for tc in tcs.values():
            assert tc.finalized
            assert not tc.trusted
            assert tc.delivered is None

    def test_equivocating_sender_is_distrusted_where_seen(self):
        # A sender that TrustCasts two values: relays spread both chains,
        # so every honest party extracts both and distrusts.
        from repro.adversary.behaviors import ScriptStep, ScriptedBehavior

        def script(behavior):
            chain_a = behavior.signer.sign(
                ("ds-val", ("tc", 0), 0, "a")
            )
            chain_b = behavior.signer.sign(
                ("ds-val", ("tc", 0), 0, "b")
            )
            steps = []
            for pid in range(1, 6):
                payload_a = (DS_MSG, ("tc", 0), chain_a)
                payload_b = (DS_MSG, ("tc", 0), chain_b)
                steps.append(ScriptStep(time=0.0, recipient=pid,
                                        payload=payload_a))
                steps.append(ScriptStep(time=0.0, recipient=pid,
                                        payload=payload_b))
            return steps

        tcs = run_tc(
            6, 4, sender=0, value=None,
            byzantine=frozenset({0}),
            behavior_factory=lambda w, pid: ScriptedBehavior(
                w, pid, script_builder=script
            ),
        )
        for tc in tcs.values():
            assert not tc.trusted

    def test_late_injection_without_signatures_is_rejected(self):
        # A chain arriving in round k needs >= k distinct signatures;
        # a bare 1-signature chain delivered in the last window fails.
        from repro.adversary.behaviors import ScriptStep, ScriptedBehavior

        def script(behavior):
            chain = behavior.signer.sign(("ds-val", ("tc", 0), 0, "late"))
            # Arrives during the final lock-step window (after boundary 3).
            return [
                ScriptStep(
                    time=0.0, recipient=pid,
                    payload=(DS_MSG, ("tc", 0), chain),
                    delay=3.5 * BIG_DELTA,
                )
                for pid in range(1, 6)
            ]

        tcs = run_tc(
            6, 4, sender=0, value=None,
            byzantine=frozenset({0}),
            behavior_factory=lambda w, pid: ScriptedBehavior(
                w, pid, script_builder=script
            ),
        )
        for tc in tcs.values():
            assert not tc.trusted
            assert tc.delivered is None
