"""Property-based tests (hypothesis) on core data structures and invariants.

Protocol-level properties run full simulations per example, so example
counts are kept moderate; the substrate properties run wider.
"""
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.messages import canonical_encode, digest
from repro.crypto.signatures import KeyRegistry
from repro.net.synchrony import SynchronyModel
from repro.protocols.brb_2round import Brb2Round
from repro.protocols.sync.bb_2delta import Bb2Delta
from repro.protocols.sync.bb_delta_15delta import BbDelta15Delta
from repro.sim.clock import quantize, skewed_offsets
from repro.sim.events import EventQueue
from repro.sim.runner import run_broadcast
from repro.sim.delays import UniformDelay
from repro.adversary.behaviors import CrashBehavior
from repro.adversary.broadcaster import equivocating_broadcaster
from repro.types import BOTTOM, FaultBudget

# --------------------------------------------------------------------- #
# canonical encoding
# --------------------------------------------------------------------- #

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.binary(max_size=20),
)
nested = st.recursive(
    scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=5), children, max_size=3),
    ),
    max_leaves=12,
)


class TestCanonicalEncoding:
    @given(nested)
    @settings(max_examples=200)
    def test_encoding_is_deterministic(self, value):
        assert canonical_encode(value) == canonical_encode(value)

    @given(nested, nested)
    @settings(max_examples=200)
    def test_digest_collision_implies_equal_encoding(self, a, b):
        if digest(a) == digest(b):
            assert canonical_encode(a) == canonical_encode(b)

    @given(st.dictionaries(st.text(max_size=5), st.integers(), max_size=5))
    @settings(max_examples=100)
    def test_dict_order_invariance(self, mapping):
        reversed_items = dict(reversed(list(mapping.items())))
        assert canonical_encode(mapping) == canonical_encode(reversed_items)

    @given(st.lists(st.integers(), max_size=6))
    @settings(max_examples=100)
    def test_tuple_list_equivalence(self, items):
        assert canonical_encode(items) == canonical_encode(tuple(items))


# --------------------------------------------------------------------- #
# signatures
# --------------------------------------------------------------------- #


class TestSignatureProperties:
    @given(
        st.integers(2, 8),
        st.lists(st.tuples(st.integers(0, 7), nested), max_size=10),
    )
    @settings(max_examples=100)
    def test_signed_payloads_always_verify(self, n, items):
        registry = KeyRegistry(n)
        signers = {i: registry.signer_for(i) for i in range(n)}
        for party, payload in items:
            signed = signers[party % n].sign(payload)
            assert registry.verify(signed)

    @given(st.integers(2, 6), nested)
    @settings(max_examples=100)
    def test_unissued_signatures_never_verify(self, n, payload):
        from repro.crypto.signatures import Signature, SignedPayload

        registry = KeyRegistry(n)
        fake = SignedPayload(payload, Signature(0, digest(payload)))
        assert not registry.verify(fake)


# --------------------------------------------------------------------- #
# event queue
# --------------------------------------------------------------------- #


class TestEventQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.integers(0, 3),
                st.binary(max_size=4),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=150)
    def test_pops_in_total_order(self, entries):
        queue = EventQueue()
        for time, priority, key in entries:
            queue.push(time, lambda: None, priority=priority, order_key=key)
        popped = []
        while (event := queue.pop()) is not None:
            popped.append((event.time, event.priority, event.order_key))
        assert popped == sorted(popped)

    @given(st.lists(st.floats(0, 100, allow_nan=False), max_size=30),
           st.sets(st.integers(0, 29)))
    @settings(max_examples=100)
    def test_cancellation_removes_exactly_those(self, times, to_cancel):
        queue = EventQueue()
        handles = [queue.push(t, lambda: None) for t in times]
        for index in to_cancel:
            if index < len(handles):
                handles[index].cancel()
        remaining = 0
        while queue.pop() is not None:
            remaining += 1
        expected = len(times) - len([i for i in to_cancel if i < len(times)])
        assert remaining == expected


# --------------------------------------------------------------------- #
# clocks and resilience arithmetic
# --------------------------------------------------------------------- #


class TestClockProperties:
    @given(st.integers(1, 20), st.floats(0, 10, allow_nan=False))
    @settings(max_examples=100)
    def test_offsets_within_window_and_sorted(self, n, skew):
        offsets = skewed_offsets(n, skew)
        assert len(offsets) == n
        assert min(offsets) == 0.0
        assert max(offsets) <= skew + 1e-9
        assert offsets == sorted(offsets)

    @given(st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=200)
    def test_quantize_idempotent(self, value):
        assert quantize(quantize(value)) == quantize(value)


class TestFaultBudgetProperties:
    @given(st.integers(1, 200), st.integers(0, 199))
    @settings(max_examples=200)
    def test_quorum_arithmetic(self, n, f):
        if f >= n:
            return
        budget = FaultBudget(n, f)
        assert budget.quorum + f == n
        assert budget.honest >= 1
        # The central quorum-intersection fact used everywhere:
        if n >= 3 * f + 1:
            assert 2 * budget.quorum - n >= f + 1


# --------------------------------------------------------------------- #
# protocol invariants under randomized schedules and fault sets
# --------------------------------------------------------------------- #


class TestBrbInvariants:
    @given(
        st.integers(0, 10_000),
        st.sampled_from([(4, 1), (7, 2), (10, 3)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_good_case_at_most_2_rounds(self, seed, config):
        # "Good-case latency 2 rounds" is a max over schedules: no schedule
        # may exceed 2, while lucky ones can measure 1 (commits can land
        # before the last slow *proposal* delivery closes round 1).
        n, f = config
        result = run_broadcast(
            n=n,
            f=f,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=UniformDelay(0.05, 2.0, seed=seed),
        )
        assert result.all_honest_committed()
        assert result.committed_value() == "v"
        assert 1 <= result.round_latency() <= 2

    @given(st.integers(0, 10_000), st.sets(st.integers(1, 6), max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_agreement_under_crashes(self, seed, crashed):
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="v"),
            delay_policy=UniformDelay(0.05, 2.0, seed=seed),
            byzantine=frozenset(crashed),
            behavior_factory=CrashBehavior,
        )
        assert result.agreement_holds()
        assert result.all_honest_committed()

    @given(st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_agreement_under_equivocation_splits(self, split, seed):
        behavior = equivocating_broadcaster(
            make_broadcaster=Brb2Round.broadcaster_factory(broadcaster=0),
            groups={
                "zero": frozenset(range(1, 1 + split)),
                "one": frozenset(range(1 + split, 7)),
            },
        )
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Brb2Round.factory(broadcaster=0, input_value="x"),
            delay_policy=UniformDelay(0.05, 2.0, seed=seed),
            byzantine=frozenset({0}),
            behavior_factory=behavior,
        )
        assert result.agreement_holds()


class TestSyncBbInvariants:
    @given(
        st.floats(0.05, 1.0, allow_nan=False),
        st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_2delta_bound_holds_for_any_delta_and_skew(self, delta, skew_frac):
        delta = quantize(delta)
        skew = quantize(min(skew_frac, 1.0) * delta)
        model = SynchronyModel(delta=delta, big_delta=1.0, skew=skew)
        result = run_broadcast(
            n=7,
            f=2,
            party_factory=Bb2Delta.factory(
                broadcaster=0, input_value="v", big_delta=1.0
            ),
            delay_policy=model.worst_case_policy(),
            start_offsets=model.offsets(7),
        )
        assert result.committed_value() == "v"
        # 2*delta measured from the broadcaster's start; stragglers add
        # at most the skew.
        assert result.latency_from(0.0) <= 2 * delta + skew + 1e-9

    @given(st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_fig9_grid_guarantee(self, m):
        delta = 0.37
        model = SynchronyModel(delta=delta, big_delta=1.0, skew=0.0)
        result = run_broadcast(
            n=5,
            f=2,
            party_factory=BbDelta15Delta.factory(
                broadcaster=0, input_value="v", big_delta=1.0,
                grid_samples=m,
            ),
            delay_policy=model.worst_case_policy(),
            start_offsets=model.offsets(5),
        )
        latency = result.latency_from(0.0)
        assert latency <= (1 + 1 / (2 * m)) * 1.0 + 1.5 * delta + 1e-9
        assert latency >= 1.0 + 1.5 * delta - 1e-9
