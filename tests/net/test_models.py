"""Tests for the timing model wrappers."""
import pytest

from repro.errors import ConfigurationError
from repro.net import AsynchronyModel, PartialSynchronyModel, SynchronyModel


class TestSynchronyModel:
    def test_valid_parameters(self):
        model = SynchronyModel(delta=0.2, big_delta=1.0, skew=0.1)
        assert model.worst_case_policy().delay(0, 1, None, 0.0) == 0.2
        assert not model.synchronized_start

    def test_synchronized_start_flag(self):
        assert SynchronyModel(delta=0.5, big_delta=1.0).synchronized_start

    def test_delta_cannot_exceed_big_delta(self):
        with pytest.raises(ConfigurationError):
            SynchronyModel(delta=2.0, big_delta=1.0)

    def test_delta_positive(self):
        with pytest.raises(ConfigurationError):
            SynchronyModel(delta=0.0, big_delta=1.0)

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            SynchronyModel(delta=0.5, big_delta=1.0, skew=-0.1)

    def test_offsets_respect_skew(self):
        model = SynchronyModel(delta=0.5, big_delta=1.0, skew=0.5)
        offsets = model.offsets(5)
        assert max(offsets) - min(offsets) <= 0.5

    def test_random_policy_bounded_by_delta(self):
        model = SynchronyModel(delta=0.5, big_delta=1.0)
        policy = model.random_policy(seed=3)
        for _ in range(50):
            assert 0 <= policy.delay(0, 1, None, 0.0) <= 0.5


class TestPartialSynchronyModel:
    def test_stable_policy_uses_post_gst_delay(self):
        model = PartialSynchronyModel(big_delta=1.0, post_gst_delay=0.3)
        assert model.stable_policy().delay(0, 1, None, 5.0) == 0.3

    def test_default_post_gst_delay_is_big_delta(self):
        model = PartialSynchronyModel(big_delta=1.0)
        assert model.post_gst_delay == 1.0

    def test_policy_caps_in_flight_messages_at_gst(self):
        model = PartialSynchronyModel(big_delta=1.0, gst=10.0)
        policy = model.random_policy(seed=1)
        for t in (0.0, 5.0, 9.9):
            delay = policy.delay(0, 1, None, t)
            assert t + delay <= 11.0 + 1e-9

    def test_post_gst_messages_bounded(self):
        model = PartialSynchronyModel(big_delta=1.0, gst=10.0)
        policy = model.random_policy(seed=1)
        for t in (10.0, 20.0):
            assert policy.delay(0, 1, None, t) <= 1.0 + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PartialSynchronyModel(big_delta=0.0)
        with pytest.raises(ConfigurationError):
            PartialSynchronyModel(big_delta=1.0, gst=-1.0)
        with pytest.raises(ConfigurationError):
            PartialSynchronyModel(big_delta=1.0, post_gst_delay=2.0)


class TestAsynchronyModel:
    def test_policy_mean(self):
        model = AsynchronyModel(mean_delay=2.0)
        assert model.policy().delay(0, 1, None, 0.0) == 2.0

    def test_random_policy_spread(self):
        model = AsynchronyModel(mean_delay=1.0, spread=0.5)
        policy = model.random_policy(seed=9)
        for _ in range(50):
            assert 0.5 <= policy.delay(0, 1, None, 0.0) <= 1.5

    def test_zero_spread_is_fixed(self):
        model = AsynchronyModel(mean_delay=1.0, spread=0.0)
        policy = model.random_policy(seed=9)
        assert policy.delay(0, 1, None, 0.0) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AsynchronyModel(mean_delay=0.0)
        with pytest.raises(ConfigurationError):
            AsynchronyModel(spread=1.5)
